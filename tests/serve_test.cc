// The xpe::serve contract, end to end over loopback HTTP: one status
// code per failure class (400 malformed, 404 unknown doc, 422 budget,
// 429 overload, 503 shutdown), hot-swap visibility (in-flight requests
// finish on their version, later requests see the new one), per-tenant
// plan caches converging on one canonical plan, and a /metrics endpoint
// whose Prometheus text actually parses. The threaded cases run under
// the TSan CI wall like every other concurrency suite in this repo.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/admission.h"
#include "src/serve/document_store.h"
#include "src/serve/http.h"
#include "src/serve/json.h"
#include "src/serve/server.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using serve::AdmissionController;
using serve::DocumentHandle;
using serve::DocumentStore;
using serve::HttpClient;
using serve::HttpResponse;
using serve::Json;
using serve::ServeOptions;
using serve::Server;
using test::MustParse;

constexpr std::string_view kCatalogXml = R"(<catalog>
  <book id="b1"><title>TCP Illustrated</title><price>55</price></book>
  <book id="b2"><title>Purely Functional DS</title><price>40</price></book>
  <book id="b3"><title>The Art of Multiprocessor</title><price>60</price></book>
</catalog>)";

std::string BigXml(int items) {
  std::string xml = "<root>";
  for (int i = 0; i < items; ++i) {
    xml += "<item><name>n</name><value>1</value></item>";
  }
  xml += "</root>";
  return xml;
}

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(JsonTest, ParseDumpRoundTrip) {
  StatusOr<Json> parsed = Json::Parse(
      R"({"b":true,"n":42,"s":"hi\n","a":[1,2],"o":{"k":null}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Dump(),
            R"({"a":[1,2],"b":true,"n":42,"o":{"k":null},"s":"hi\n"})")
      << "keys sort, numbers stay integral, escapes round-trip";
}

TEST(JsonTest, TrailingGarbageAndBadSyntaxAreParseErrors) {
  EXPECT_FALSE(Json::Parse("{} x").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("01").ok());
  const Status status = Json::Parse("[1, \x01]").status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_GT(status.column(), 0) << "errors carry a 1-based offset";
}

TEST(JsonTest, DepthCapStopsHostileNesting) {
  std::string deep(Json::kMaxDepth + 8, '[');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, FindAndSetOnObjects) {
  Json obj = Json::Obj();
  obj.Set("x", Json::Number(7));
  ASSERT_NE(obj.Find("x"), nullptr);
  EXPECT_EQ(obj.Find("x")->number(), 7);
  EXPECT_EQ(obj.Find("missing"), nullptr);
  EXPECT_EQ(Json::Number(3).Find("x"), nullptr) << "non-objects have no keys";
}

// ---------------------------------------------------------------------------
// DocumentStore
// ---------------------------------------------------------------------------

TEST(DocumentStoreTest, PutGetVersionsAscend) {
  obs::Registry registry;
  DocumentStore store(&registry);
  EXPECT_EQ(store.Get("d"), nullptr);
  DocumentHandle v1 = store.Put("d", MustParse("<a><b/></a>"));
  EXPECT_EQ(v1->version, 1u);
  DocumentHandle v2 = store.Put("d", MustParse("<a><b/><c/></a>"));
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(store.Get("d")->version, 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(DocumentStoreTest, InFlightHandlePinsOldVersionAcrossSwap) {
  obs::Registry registry;
  DocumentStore store(&registry);
  store.Put("d", MustParse("<old/>"));
  DocumentHandle held = store.Get("d");  // the "in-flight request"
  store.Put("d", MustParse("<new><n/></new>"));
  // The held handle still reads the old tree; new lookups see the swap.
  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(held->doc.name(1), "old");
  EXPECT_EQ(store.Get("d")->version, 2u);
  EXPECT_EQ(store.Get("d")->doc.name(1), "new");
}

TEST(DocumentStoreTest, RemoveKeepsHandlesAliveAndVersionsMonotonic) {
  obs::Registry registry;
  DocumentStore store(&registry);
  store.Put("d", MustParse("<a/>"));
  DocumentHandle held = store.Get("d");
  EXPECT_TRUE(store.Remove("d"));
  EXPECT_FALSE(store.Remove("d"));
  EXPECT_EQ(store.Get("d"), nullptr);
  EXPECT_EQ(held->doc.name(1), "a") << "removal must not free held versions";
  // Re-adding the name continues the sequence — observers can order swaps.
  EXPECT_EQ(store.Put("d", MustParse("<a/>"))->version, 2u);
}

TEST(DocumentStoreTest, ListIsSortedByName) {
  obs::Registry registry;
  DocumentStore store(&registry);
  store.Put("zebra", MustParse("<z/>"));
  store.Put("alpha", MustParse("<a><b/></a>"));
  const std::vector<DocumentStore::Info> list = store.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "alpha");
  EXPECT_EQ(list[1].name, "zebra");
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionTest, InflightBoundAndTicketRelease) {
  obs::Registry registry;
  AdmissionController admission({.max_inflight = 2}, &registry);
  auto t1 = admission.TryAdmit();
  auto t2 = admission.TryAdmit();
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_FALSE(admission.TryAdmit().has_value()) << "third must be rejected";
  t1.reset();  // RAII release frees the slot
  EXPECT_TRUE(admission.TryAdmit().has_value());
}

TEST(AdmissionTest, ZeroInflightAdmitsNothing) {
  obs::Registry registry;
  AdmissionController admission({.max_inflight = 0}, &registry);
  EXPECT_FALSE(admission.TryAdmit().has_value());
}

TEST(AdmissionTest, EffectiveBudgetResolvesDefaultThenClamps) {
  obs::Registry registry;
  AdmissionController admission(
      {.max_inflight = 1, .default_budget = 100, .max_budget = 50}, &registry);
  EXPECT_EQ(admission.EffectiveBudget(0), 50u) << "default, then clamped";
  EXPECT_EQ(admission.EffectiveBudget(10), 10u);
  EXPECT_EQ(admission.EffectiveBudget(1000), 50u) << "cap clamps, not rejects";
  AdmissionController open({.max_inflight = 1}, &registry);
  EXPECT_EQ(open.EffectiveBudget(0), 0u) << "0 stays unlimited";
  EXPECT_EQ(open.EffectiveBudget(7), 7u);
}

// ---------------------------------------------------------------------------
// CanonicalPlanLevel: cross-cache dedup
// ---------------------------------------------------------------------------

TEST(CanonicalPlanLevelTest, TwoCachesConvergeOnOnePlan) {
  obs::Registry registry;
  batch::CanonicalPlanLevel level;
  batch::PlanCache tenant_a(8, {}, &registry, &level);
  batch::PlanCache tenant_b(8, {}, &registry, &level);
  batch::SharedPlan a = *tenant_a.GetOrCompile("//x[1]");
  batch::SharedPlan b = *tenant_b.GetOrCompile("//x[ 1 ]");
  EXPECT_EQ(a.get(), b.get())
      << "equivalent spellings across tenants must share one plan object";
  EXPECT_EQ(tenant_b.stats().canonical_shares, 1u);
  EXPECT_EQ(tenant_a.stats().canonical_entries, 0u)
      << "shared level: the private canonical map stays empty";
  EXPECT_EQ(level.live_entries(), 1u);
}

TEST(CanonicalPlanLevelTest, HoldsWeakReferencesOnly) {
  obs::Registry registry;
  batch::CanonicalPlanLevel level;
  {
    batch::PlanCache cache(8, {}, &registry, &level);
    ASSERT_TRUE(cache.GetOrCompile("//weak").ok());
    EXPECT_EQ(level.live_entries(), 1u);
  }
  // The cache (and its plan) are gone; the level must not keep it alive.
  EXPECT_EQ(level.live_entries(), 0u);
  EXPECT_EQ(level.SweepExpired(), 1u);
}

// ---------------------------------------------------------------------------
// Server integration over loopback
// ---------------------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  void StartServer(ServeOptions options = {}) {
    options.registry = &registry_;
    options.canonical = &canonical_;
    options.io_threads = 4;
    options.workers = 2;
    server_ = std::make_unique<Server>(std::move(options));
    server_->documents().Put("catalog", MustParse(kCatalogXml));
    ASSERT_TRUE(server_->Start().ok());
    StatusOr<HttpClient> client =
        HttpClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status();
    client_ = std::move(client).value();
  }

  /// POST /query and return the response (fails the test on socket errors).
  HttpResponse Query(const Json& body) {
    StatusOr<HttpResponse> response =
        client_.RoundTrip("POST", "/query", body.Dump());
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? *response : HttpResponse{.status = -1};
  }

  static Json QueryBody(std::string_view xpath,
                        std::string_view doc = "catalog") {
    Json body = Json::Obj();
    body.Set("doc", Json::Str(std::string(doc)));
    body.Set("xpath", Json::Str(std::string(xpath)));
    return body;
  }

  static Json MustJson(const HttpResponse& response) {
    StatusOr<Json> parsed = Json::Parse(response.body);
    EXPECT_TRUE(parsed.ok()) << parsed.status() << " in: " << response.body;
    return parsed.ok() ? *parsed : Json::Null();
  }

  obs::Registry registry_;
  batch::CanonicalPlanLevel canonical_;
  std::unique_ptr<Server> server_;
  HttpClient client_;
};

TEST_F(ServeTest, FullModeReturnsNodesInDocumentOrder) {
  StartServer();
  const HttpResponse response = Query(QueryBody("//book/title"));
  ASSERT_EQ(response.status, 200) << response.body;
  const Json body = MustJson(response);
  EXPECT_EQ(body.Find("type")->string(), "node-set");
  EXPECT_EQ(body.Find("count")->number(), 3);
  EXPECT_EQ(body.Find("doc")->string(), "catalog");
  EXPECT_EQ(body.Find("doc_version")->number(), 1);
  const Json::Array& nodes = body.Find("nodes")->array();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0].Find("name")->string(), "title");
  EXPECT_EQ(nodes[0].Find("string")->string(), "TCP Illustrated");
  EXPECT_LT(nodes[0].Find("id")->number(), nodes[1].Find("id")->number())
      << "ids are NodeIds, so ascending means document order";
}

TEST_F(ServeTest, EveryResultModeAnswers) {
  StartServer();
  Json exists = QueryBody("//book[price>50]");
  exists.Set("mode", Json::Str("exists"));
  Json body = MustJson(Query(exists));
  EXPECT_EQ(body.Find("type")->string(), "boolean");
  EXPECT_TRUE(body.Find("value")->boolean());

  Json count = QueryBody("//book");
  count.Set("mode", Json::Str("count"));
  body = MustJson(Query(count));
  EXPECT_EQ(body.Find("type")->string(), "number");
  EXPECT_EQ(body.Find("value")->number(), 3);

  Json first = QueryBody("//book");
  first.Set("mode", Json::Str("first"));
  body = MustJson(Query(first));
  EXPECT_EQ(body.Find("count")->number(), 1);

  Json limit = QueryBody("//book");
  limit.Set("mode", Json::Str("limit"));
  limit.Set("limit", Json::Number(2));
  body = MustJson(Query(limit));
  EXPECT_EQ(body.Find("count")->number(), 2);
}

TEST_F(ServeTest, MalformedJsonIs400) {
  StartServer();
  StatusOr<HttpResponse> response =
      client_.RoundTrip("POST", "/query", "{not json");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  EXPECT_EQ(MustJson(*response).Find("error")->Find("code")->string(),
            "ParseError");
}

TEST_F(ServeTest, BadXPathIs400) {
  StartServer();
  EXPECT_EQ(Query(QueryBody("//book[")).status, 400);
}

TEST_F(ServeTest, MissingFieldAndBadModeAre400) {
  StartServer();
  Json no_xpath = Json::Obj();
  no_xpath.Set("doc", Json::Str("catalog"));
  EXPECT_EQ(Query(no_xpath).status, 400);

  Json bad_mode = QueryBody("//book");
  bad_mode.Set("mode", Json::Str("stream"));
  EXPECT_EQ(Query(bad_mode).status, 400);

  Json zero_limit = QueryBody("//book");
  zero_limit.Set("mode", Json::Str("limit"));
  EXPECT_EQ(Query(zero_limit).status, 400) << "limit mode needs limit >= 1";
}

TEST_F(ServeTest, UnknownDocumentIs404) {
  StartServer();
  EXPECT_EQ(Query(QueryBody("//book", "nope")).status, 404);
}

TEST_F(ServeTest, BudgetExhaustionIs422) {
  StartServer();
  server_->documents().Put("big", MustParse(BigXml(200)));
  Json body = QueryBody("//item/name", "big");
  body.Set("budget", Json::Number(1));
  const HttpResponse response = Query(body);
  EXPECT_EQ(response.status, 422) << response.body;
  EXPECT_EQ(MustJson(response).Find("error")->Find("code")->string(),
            "ResourceExhausted");
}

TEST_F(ServeTest, ServerSideBudgetCapAppliesWithoutClientOptIn) {
  ServeOptions options;
  options.admission.default_budget = 1;  // every request inherits it
  StartServer(std::move(options));
  server_->documents().Put("big", MustParse(BigXml(200)));
  EXPECT_EQ(Query(QueryBody("//item/name", "big")).status, 422);
}

TEST_F(ServeTest, OverloadIs429) {
  ServeOptions options;
  options.admission.max_inflight = 0;  // deterministic: admit nothing
  StartServer(std::move(options));
  const HttpResponse response = Query(QueryBody("//book"));
  EXPECT_EQ(response.status, 429);
  EXPECT_EQ(MustJson(response).Find("error")->Find("code")->string(),
            "Overloaded");
}

TEST_F(ServeTest, HotSwapNewRequestsSeeNewVersion) {
  StartServer();
  Json before = MustJson(Query(QueryBody("//book")));
  EXPECT_EQ(before.Find("doc_version")->number(), 1);
  EXPECT_EQ(before.Find("count")->number(), 3);

  StatusOr<HttpResponse> put = client_.RoundTrip(
      "PUT", "/documents/catalog",
      "<catalog><book id='only'><title>One</title></book></catalog>",
      "application/xml");
  ASSERT_TRUE(put.ok());
  ASSERT_EQ(put->status, 200) << put->body;
  EXPECT_EQ(MustJson(*put).Find("version")->number(), 2);

  Json after = MustJson(Query(QueryBody("//book")));
  EXPECT_EQ(after.Find("doc_version")->number(), 2);
  EXPECT_EQ(after.Find("count")->number(), 1);
}

TEST_F(ServeTest, DocumentCrudOverHttp) {
  StartServer();
  StatusOr<HttpResponse> put = client_.RoundTrip(
      "PUT", "/documents/fresh", "<r><x/></r>", "application/xml");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->status, 201) << "first version is a creation";

  StatusOr<HttpResponse> bad_xml =
      client_.RoundTrip("PUT", "/documents/bad", "<r>", "application/xml");
  ASSERT_TRUE(bad_xml.ok());
  EXPECT_EQ(bad_xml->status, 400);

  StatusOr<HttpResponse> list = client_.RoundTrip("GET", "/documents");
  ASSERT_TRUE(list.ok());
  const Json listing = MustJson(*list);
  const Json::Array& docs = listing.Find("documents")->array();
  ASSERT_EQ(docs.size(), 2u) << "catalog + fresh, sorted";
  EXPECT_EQ(docs[0].Find("name")->string(), "catalog");
  EXPECT_EQ(docs[1].Find("name")->string(), "fresh");

  StatusOr<HttpResponse> info = client_.RoundTrip("GET", "/documents/fresh");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(MustJson(*info).Find("nodes")->number(), 3);

  StatusOr<HttpResponse> del = client_.RoundTrip("DELETE", "/documents/fresh");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->status, 200);
  del = client_.RoundTrip("DELETE", "/documents/fresh");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->status, 404);
}

TEST_F(ServeTest, AnalyzeEndpointReportsWarnings) {
  StartServer();
  Json body = Json::Obj();
  body.Set("doc", Json::Str("catalog"));
  body.Set("xpath", Json::Str("//book/chapter"));
  StatusOr<HttpResponse> response =
      client_.RoundTrip("POST", "/analyze", body.Dump());
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  const Json out = MustJson(*response);
  EXPECT_EQ(out.Find("verdict")->string(), "empty");
  EXPECT_GT(out.Find("summary_bytes")->number(), 0);
  EXPECT_GT(out.Find("steps_analyzed")->number(), 0);
  const Json::Array& warnings = out.Find("warnings")->array();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].Find("code")->string(), "always-empty-step");
  EXPECT_EQ(warnings[0].Find("nearest_path")->string(), "/catalog/book");
  EXPECT_FALSE(warnings[0].Find("message")->string().empty());

  // A clean query: satisfiable, no warnings.
  body.Set("xpath", Json::Str("//book/title"));
  response = client_.RoundTrip("POST", "/analyze", body.Dump());
  ASSERT_TRUE(response.ok());
  const Json clean = MustJson(*response);
  EXPECT_EQ(clean.Find("verdict")->string(), "satisfiable");
  EXPECT_TRUE(clean.Find("warnings")->array().empty());

  // A provably-constant scalar root reports its value.
  body.Set("xpath", Json::Str("count(//chapter)"));
  response = client_.RoundTrip("POST", "/analyze", body.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(MustJson(*response).Find("constant_number")->number(), 0);
}

TEST_F(ServeTest, AnalyzeEndpointErrors) {
  StartServer();
  Json body = Json::Obj();
  body.Set("doc", Json::Str("nope"));
  body.Set("xpath", Json::Str("//x"));
  StatusOr<HttpResponse> response =
      client_.RoundTrip("POST", "/analyze", body.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);

  body.Set("doc", Json::Str("catalog"));
  body.Set("xpath", Json::Str("//["));
  response = client_.RoundTrip("POST", "/analyze", body.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);

  response = client_.RoundTrip("GET", "/analyze");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 405);
}

TEST_F(ServeTest, AnalyzeSharesThePlanCacheWithQuery) {
  StartServer();
  Json body = QueryBody("//book/price");
  StatusOr<HttpResponse> lint =
      client_.RoundTrip("POST", "/analyze", body.Dump());
  ASSERT_TRUE(lint.ok());
  EXPECT_FALSE(MustJson(*lint).Find("cache_hit")->boolean());
  // The lint compiled (and cached) the plan; the query hits it.
  const HttpResponse query = Query(body);
  ASSERT_EQ(query.status, 200);
  EXPECT_TRUE(MustJson(query).Find("cache_hit")->boolean());
}

TEST_F(ServeTest, IndexTierSelectionOverHttp) {
  StartServer();
  // ?index_tier=dense publishes under the succinct tier; the response
  // and both document views echo it.
  StatusOr<HttpResponse> put =
      client_.RoundTrip("PUT", "/documents/packed?index_tier=dense",
                        "<r><x/><x/><y/></r>", "application/xml");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->status, 201);
  EXPECT_EQ(MustJson(*put).Find("index_tier")->string(), "dense");

  StatusOr<HttpResponse> info = client_.RoundTrip("GET", "/documents/packed");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(MustJson(*info).Find("index_tier")->string(), "dense");

  StatusOr<HttpResponse> list = client_.RoundTrip("GET", "/documents");
  ASSERT_TRUE(list.ok());
  const Json listing = MustJson(*list);
  for (const Json& entry : listing.Find("documents")->array()) {
    const bool dense = entry.Find("name")->string() == "packed";
    EXPECT_EQ(entry.Find("index_tier")->string(), dense ? "dense" : "hot");
    EXPECT_GT(entry.Find("index_bytes")->number(), 0);
    EXPECT_GT(entry.Find("summary_bytes")->number(), 0);
  }

  // An unknown tier never publishes.
  StatusOr<HttpResponse> bad = client_.RoundTrip(
      "PUT", "/documents/nope?index_tier=warm", "<r/>", "application/xml");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  EXPECT_EQ(client_.RoundTrip("GET", "/documents/nope")->status, 404);

  // Per-request override: the same query answers identically through
  // either tier, whatever the document's default.
  Json body = QueryBody("count(//x)", "packed");
  for (const char* tier : {"hot", "dense"}) {
    body.Set("index_tier", Json::Str(tier));
    const HttpResponse response = Query(body);
    ASSERT_EQ(response.status, 200) << tier << ": " << response.body;
    EXPECT_EQ(MustJson(response).Find("value")->number(), 2) << tier;
  }
  body.Set("index_tier", Json::Str("warm"));
  EXPECT_EQ(Query(body).status, 400);
}

TEST_F(ServeTest, TenantsShareOneCanonicalPlan) {
  StartServer();
  Json t1 = QueryBody("//book/title");
  t1.Set("tenant", Json::Str("tenant-1"));
  ASSERT_EQ(Query(t1).status, 200);
  Json t2 = QueryBody("//book/ title ");  // same canonical query, respelled
  t2.Set("tenant", Json::Str("tenant-2"));
  ASSERT_EQ(Query(t2).status, 200);

  EXPECT_EQ(server_->TenantCacheStats("tenant-1").entries, 1u);
  EXPECT_EQ(server_->TenantCacheStats("tenant-2").entries, 1u)
      << "capacity/LRU stay per-tenant";
  EXPECT_EQ(server_->TenantCacheStats("tenant-2").canonical_shares, 1u)
      << "…but the compiled plan is shared through the canonical level";
  EXPECT_EQ(canonical_.live_entries(), 1u);
}

TEST_F(ServeTest, HealthzAnswers) {
  StartServer();
  StatusOr<HttpResponse> response = client_.RoundTrip("GET", "/healthz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  const Json body = MustJson(*response);
  EXPECT_EQ(body.Find("status")->string(), "ok");
  EXPECT_EQ(body.Find("documents")->number(), 1);
}

TEST_F(ServeTest, MetricsExposeEveryTierAsValidPrometheusText) {
  StartServer();
  ASSERT_EQ(Query(QueryBody("//book")).status, 200);  // populate the tiers
  StatusOr<HttpResponse> response = client_.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->content_type.rfind("text/plain", 0), 0u);
  const std::string& text = response->body;
  for (std::string_view series :
       {"xpe_serve_requests_total", "xpe_serve_admission_admitted_total",
        "xpe_serve_request_us", "xpe_plan_cache_misses_total",
        "xpe_batch_items_total", "xpe_batch_item_latency_us"}) {
    EXPECT_NE(text.find(series), std::string::npos) << "missing " << series;
  }
  // Shape check: every non-empty line is a comment or `name[{labels}] value`.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string_view::npos) << "bad line: " << line;
    char* parse_end = nullptr;
    const std::string value(line.substr(space + 1));
    strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "non-numeric sample: " << line;
  }
}

TEST_F(ServeTest, MetricsJsonParses) {
  StartServer();
  StatusOr<HttpResponse> response = client_.RoundTrip("GET", "/metrics.json");
  ASSERT_TRUE(response.ok());
  const Json body = MustJson(*response);
  EXPECT_NE(body.Find("counters"), nullptr);
  EXPECT_NE(body.Find("histograms"), nullptr);
}

TEST_F(ServeTest, UnknownPathAndWrongMethod) {
  StartServer();
  StatusOr<HttpResponse> response = client_.RoundTrip("GET", "/nope");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);
  response = client_.RoundTrip("GET", "/query");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 405);
  response = client_.RoundTrip("POST", "/metrics");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 405);
}

TEST_F(ServeTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartServer();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(Query(QueryBody("//book")).status, 200) << "round " << i;
  }
  const Json body = MustJson(Query(QueryBody("//book")));
  EXPECT_TRUE(body.Find("cache_hit")->boolean())
      << "repeated source text must hit the tenant cache";
}

TEST_F(ServeTest, ConcurrentClientsGetConsistentAnswers) {
  StartServer();
  constexpr int kClients = 4;
  constexpr int kRounds = 16;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      StatusOr<HttpClient> client =
          HttpClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        Json body = QueryBody(i % 2 == 0 ? "//book" : "count(//book)");
        StatusOr<HttpResponse> response =
            client->RoundTrip("POST", "/query", body.Dump());
        if (!response.ok() || response->status != 200) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServeTest, StopIsIdempotentAndRestartable) {
  StartServer();
  ASSERT_EQ(Query(QueryBody("//book")).status, 200);
  server_->Stop();
  server_->Stop();  // second stop is a no-op
  EXPECT_FALSE(server_->running());
  ASSERT_TRUE(server_->Start().ok()) << "a stopped server can start again";
  StatusOr<HttpClient> client =
      HttpClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  StatusOr<HttpResponse> response =
      client->RoundTrip("POST", "/query", QueryBody("//book").Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
}

}  // namespace
}  // namespace xpe
