// The compile-time rewrite pipeline (src/xpath/optimize.h).
//
// Four layers of coverage:
//  - rule unit tests: every rewrite pinned through the canonical
//    rendering of the optimized tree, plus the OptimizeStats counters
//    that make each rewrite observable;
//  - the optimizer differential: optimized and optimize=off plans of
//    one corpus must agree bit-for-bit across all six engines × index
//    on/off × all five result modes — the optimizer may only ever
//    change cost, never answers;
//  - plan-cache canonicalization: `//t` and `/descendant::t` optimize
//    to identical trees, so the PlanCache collapses them onto one
//    cached plan object;
//  - the budget parity regression (ISSUE 5 satellite): a tiny
//    EvalOptions::budget must trip *every* engine — including the
//    OPTMINCONTEXT bottom-up (Wadler) passes, which used to do all
//    their work in the backward-propagation loop without charging.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "src/batch/plan_cache.h"
#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::MustCompile;
using test::MustParse;

std::string OptimizedKey(std::string_view query) {
  return MustCompile(query).canonical_key();
}

xpath::CompiledQuery CompileUnoptimized(std::string_view query) {
  xpath::CompileOptions options;
  options.optimize = false;
  return MustCompile(query, options);
}

// --- rewrite rules, pinned through the canonical rendering -----------------

TEST(OptimizeRuleTest, DescendantPairFusesForEverySpelling) {
  EXPECT_EQ(OptimizedKey("//t"), "/descendant::t");
  EXPECT_EQ(OptimizedKey("/descendant::t"), "/descendant::t");
  EXPECT_EQ(OptimizedKey(".//t"), "descendant::t");
  EXPECT_EQ(OptimizedKey("//t//u"), "/descendant::t/descendant::u");
  EXPECT_EQ(OptimizedKey("//a/b"), "/descendant::a/child::b");
  EXPECT_EQ(OptimizedKey("/descendant-or-self::node()/descendant::t"),
            "/descendant::t");
  EXPECT_EQ(OptimizedKey(
                "/descendant-or-self::node()/descendant-or-self::node()/t"),
            "/descendant::t");
}

TEST(OptimizeRuleTest, FusionCarriesPositionFreePredicates) {
  EXPECT_EQ(OptimizedKey("//t[u]"), "/descendant::t[boolean(child::u)]");
  // A predicate whose position dependence folds away mid-pass becomes
  // fusable on the next round (the Relev bits are refreshed per pass);
  // the folded false() is then the or's neutral operand and drops too.
  EXPECT_EQ(OptimizedKey("//t[b or position() = 0]"),
            "/descendant::t[boolean(child::b)]");
  // Positional predicates veto the fusion: the hop changes their
  // candidate-list ranks, so the pair must stay.
  EXPECT_EQ(OptimizedKey("//t[1]"),
            "/descendant-or-self::node()/child::t[(position() = 1)]");
  EXPECT_EQ(OptimizedKey("//t[last()]"),
            "/descendant-or-self::node()/child::t[(position() = last())]");
}

TEST(OptimizeRuleTest, FusionDoesNotCrossOtherAxes) {
  EXPECT_EQ(OptimizedKey("//t/parent::u"),
            "/descendant::t/parent::u");
  EXPECT_EQ(OptimizedKey("/descendant-or-self::node()/following::t"),
            "/descendant-or-self::node()/following::t");
  // A predicate on the hop itself blocks the fusion too.
  EXPECT_EQ(OptimizedKey("/descendant-or-self::node()[u]/child::t"),
            "/descendant-or-self::node()[boolean(child::u)]/child::t");
}

TEST(OptimizeRuleTest, RedundantSelfStepsCollapse) {
  EXPECT_EQ(OptimizedKey("./a"), "child::a");
  EXPECT_EQ(OptimizedKey("a/./b"), "child::a/child::b");
  EXPECT_EQ(OptimizedKey("/a/."), "/child::a");
  // The last step standing survives: a path needs at least one.
  EXPECT_EQ(OptimizedKey("."), "self::node()");
  EXPECT_EQ(OptimizedKey("./."), "self::node()");
}

TEST(OptimizeRuleTest, ConstantPredicatesSimplify) {
  EXPECT_EQ(OptimizedKey("a[true()]"), "child::a");
  EXPECT_EQ(OptimizedKey("a['x']"), "child::a");       // boolean('x') = true
  EXPECT_EQ(OptimizedKey("a[2 > 1]"), "child::a");
  EXPECT_EQ(OptimizedKey("a[false()]"), "child::a[false()]");
  EXPECT_EQ(OptimizedKey("a['']"), "child::a[false()]");
  // Everything after a constant-false step is dead code.
  EXPECT_EQ(OptimizedKey("a[false()]/b/c"), "child::a[false()]");
  // A false predicate swallows its siblings: the step selects nothing.
  EXPECT_EQ(OptimizedKey("a[b][false()]"), "child::a[false()]");
}

TEST(OptimizeRuleTest, ImpossiblePositionsTightenToFalse) {
  EXPECT_EQ(OptimizedKey("a[0]"), "child::a[false()]");
  EXPECT_EQ(OptimizedKey("a[1.5]"), "child::a[false()]");
  EXPECT_EQ(OptimizedKey("a[-2]"), "child::a[false()]");
  // Plausible positions stay.
  EXPECT_EQ(OptimizedKey("a[2]"), "child::a[(position() = 2)]");
}

TEST(OptimizeRuleTest, SingleCandidateAxesDropVacuousPositions) {
  // self/parent candidate lists hold at most one node: position() = 1
  // is vacuous there and position() = 2 impossible.
  EXPECT_EQ(OptimizedKey("a/parent::b[1]"), "child::a/parent::b");
  EXPECT_EQ(OptimizedKey("a/parent::b[2]"), "child::a/parent::b[false()]");
  EXPECT_EQ(OptimizedKey("self::a[1]"), "self::a");
  // child knows no such bound.
  EXPECT_EQ(OptimizedKey("a/b[1]"), "child::a/child::b[(position() = 1)]");
}

TEST(OptimizeRuleTest, NamedAttributeStepsDropVacuousPositions) {
  // Attribute names are unique per element, so a *named* attribute step
  // has at most one candidate too.
  EXPECT_EQ(OptimizedKey("a/attribute::b[1]"), "child::a/attribute::b");
  EXPECT_EQ(OptimizedKey("a/@b[1]"), "child::a/attribute::b");
  EXPECT_EQ(OptimizedKey("a/attribute::b[2]"),
            "child::a/attribute::b[false()]");
  // attribute::* can hold many candidates: no tightening.
  EXPECT_EQ(OptimizedKey("a/attribute::*[2]"),
            "child::a/attribute::*[(position() = 2)]");
}

TEST(OptimizeRuleTest, BooleanConstantsFold) {
  EXPECT_EQ(OptimizedKey("true() and false()"), "false()");
  EXPECT_EQ(OptimizedKey("true() or false()"), "true()");
  EXPECT_EQ(OptimizedKey("not(false())"), "true()");
  EXPECT_EQ(OptimizedKey("1 < 2"), "true()");
  EXPECT_EQ(OptimizedKey("'a' = 'b'"), "false()");
  // A deciding constant operand settles and/or without the other side.
  EXPECT_EQ(OptimizedKey("a[b and false()]"), "child::a[false()]");
  EXPECT_EQ(OptimizedKey("a[b or true()]"), "child::a");
}

TEST(OptimizeRuleTest, NeutralOperandsDrop) {
  // The operator's neutral constant decides nothing: the other operand
  // alone is the expression (either operand order).
  EXPECT_EQ(OptimizedKey("a[b and true()]"), "child::a[boolean(child::b)]");
  EXPECT_EQ(OptimizedKey("a[true() and b]"), "child::a[boolean(child::b)]");
  EXPECT_EQ(OptimizedKey("a[b or false()]"), "child::a[boolean(child::b)]");
  EXPECT_EQ(OptimizedKey("a[false() or b]"), "child::a[boolean(child::b)]");
  // The kept operand stays boolean-typed (and/or coerce their operands),
  // so surrounding comparisons keep their boolean = string semantics.
  EXPECT_EQ(OptimizedKey("(b and true()) = 'x'"),
            "(boolean(child::b) = 'x')");

  const xpath::CompiledQuery dropped = MustCompile("a[b and true()]");
  EXPECT_EQ(dropped.optimize_stats().eliminated_neutral_operands, 1u);
  EXPECT_NE(xpath::Explain(dropped).find("neutral_ops_dropped=1"),
            std::string::npos);
}

TEST(OptimizeRuleTest, ConstantArithmeticFolds) {
  // [1 + 1] normalizes to position() = (1 + 1); the folded literal is
  // exactly what the position rules see for a spelled-out [2].
  EXPECT_EQ(OptimizedKey("a[1 + 1]"), OptimizedKey("a[2]"));
  EXPECT_EQ(OptimizedKey("a[1 + 1]"), "child::a[(position() = 2)]");
  EXPECT_EQ(OptimizedKey("a[2 * 3 - 1]"), "child::a[(position() = 5)]");
  EXPECT_EQ(OptimizedKey("a[4 div 2]"), "child::a[(position() = 2)]");
  EXPECT_EQ(OptimizedKey("a[7 mod 3]"), "child::a[(position() = 1)]");
  // ... including feeding the impossible-position and single-candidate
  // tightenings.
  EXPECT_EQ(OptimizedKey("a[1 - 2]"), "child::a[false()]");
  EXPECT_EQ(OptimizedKey("a[3 div 2]"), "child::a[false()]");
  EXPECT_EQ(OptimizedKey("a/parent::b[3 - 1]"), "child::a/parent::b[false()]");
  // Non-constant operands stay put.
  EXPECT_EQ(OptimizedKey("a[count(b) + 1]"),
            "child::a[(position() = (count(child::b) + 1))]");

  const xpath::CompiledQuery folded = MustCompile("a[2 * 3 - 1]");
  EXPECT_EQ(folded.optimize_stats().folded_arithmetic, 2u);
  EXPECT_NE(xpath::Explain(folded).find("arith_folded=2"), std::string::npos);
}

TEST(OptimizeRuleTest, StatsRecordEveryRewrite) {
  const xpath::CompiledQuery fused = MustCompile("//t//u");
  EXPECT_EQ(fused.optimize_stats().fused_descendant_steps, 2u);
  EXPECT_EQ(fused.optimize_stats().total(), 2u);

  const xpath::CompiledQuery mixed = MustCompile("./a[true()]//b[0]");
  EXPECT_EQ(mixed.optimize_stats().removed_self_steps, 1u);
  EXPECT_EQ(mixed.optimize_stats().dropped_true_predicates, 1u);
  EXPECT_GE(mixed.optimize_stats().folded_constants, 1u);
  EXPECT_EQ(mixed.optimize_stats().tightened_position_predicates, 1u);
  // [0] is constant-false, so the fused trailing step keeps it and the
  // fusion still applies (the predicate is position-free once folded).
  EXPECT_EQ(mixed.canonical_key(), "child::a/descendant::b[false()]");

  const xpath::CompiledQuery untouched = CompileUnoptimized("//t");
  EXPECT_EQ(untouched.optimize_stats().total(), 0u);
  EXPECT_EQ(untouched.canonical_key(),
            "/descendant-or-self::node()/child::t");
}

TEST(OptimizeRuleTest, OptimizerIsIdempotentOnItsOwnOutput) {
  for (const char* query :
       {"//t", "//t//u", "//a[x]//x", "./a[true()]//b[0]", "a[false()]/b",
        "//t[b or position() = 0]"}) {
    const std::string once = OptimizedKey(query);
    EXPECT_EQ(OptimizedKey(once), once) << query;
  }
}

TEST(OptimizeRuleTest, ExplainSurfacesTheRewrites) {
  const xpath::CompiledQuery compiled = MustCompile("//t");
  EXPECT_NE(xpath::Explain(compiled).find("optimizer:"), std::string::npos);
  EXPECT_NE(xpath::Explain(compiled).find("fused=1"), std::string::npos);
}

// --- the optimizer differential --------------------------------------------

/// Queries chosen so every rewrite rule fires somewhere, over documents
/// random enough to expose a semantics change: fusions (trailing,
/// leading, chained, predicated), self steps, constant predicates,
/// impossible positions, positional vetoes, unions, filters.
const char* kOptimizerCorpus[] = {
    "//a",
    "//a/b",
    "//a//b",
    "//a[b]//c",
    "//a[1]",
    "//b[last()]",
    ".//b",
    "./a/./b",
    "//a[true()]",
    "//a[false()]",
    "//a[false()]/b",
    "//a[0]",
    "//a[2]",
    "//b/parent::a[1]",
    "//a[b and false()]",
    "//a[b or true()]",
    "//a[b and true()]",
    "//a[b or false()]",
    "//a/b[1 + 1]",
    "//a/b[2 * 2 - 1]",
    "//a[.//c]//b",
    "//a | .//b",
    "(//a//b)[2]",
    "//a[count(.//b) > 1]//c",
};

/// Scalar-typed spellings (compared through the rendered Value).
const char* kScalarCorpus[] = {
    "boolean(//a)",
    "count(//a//b)",
    "string(//a[b]//c)",
    "true() and boolean(//b)",
    "count(//a[false()])",
};

class OptimizerDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerDifferentialTest, OptimizedPlansMatchUnoptimizedPlans) {
  xml::Document doc =
      xml::MakeRandomDocument(60, {"a", "b", "c"}, GetParam());
  for (const char* query : kOptimizerCorpus) {
    const xpath::CompiledQuery optimized = MustCompile(query);
    const xpath::CompiledQuery unoptimized = CompileUnoptimized(query);
    std::vector<EngineKind> engines = {
        EngineKind::kNaive,      EngineKind::kBottomUp,
        EngineKind::kTopDown,    EngineKind::kMinContext,
        EngineKind::kOptMinContext};
    // kCoreXPath accepts a query iff its (per-plan) fragment is Core
    // XPath; the optimizer can only widen the fragment (e.g. by folding
    // away a non-core predicate), so gate on the narrower plan.
    if (optimized.fragment() == xpath::Fragment::kCoreXPath &&
        unoptimized.fragment() == xpath::Fragment::kCoreXPath) {
      engines.push_back(EngineKind::kCoreXPath);
    }
    for (EngineKind engine : engines) {
      for (bool use_index : {false, true}) {
        EvalOptions opts;
        opts.engine = engine;
        opts.use_index = use_index;
        const std::string label =
            std::string(query) + " on " + EngineKindToString(engine) +
            (use_index ? " +index" : " -index") + " seed " +
            std::to_string(GetParam());

        StatusOr<NodeSet> want = EvaluateNodeSet(unoptimized, doc, {}, opts);
        ASSERT_TRUE(want.ok()) << label << ": " << want.status().ToString();
        StatusOr<NodeSet> got = EvaluateNodeSet(optimized, doc, {}, opts);
        ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
        EXPECT_EQ(*got, *want) << label;

        auto eval_mode = [&](const xpath::CompiledQuery& plan,
                             ResultMode mode, uint64_t limit) {
          EvalOptions mode_opts = opts;
          mode_opts.result.mode = mode;
          mode_opts.result.limit = limit;
          StatusOr<Value> v = Evaluate(plan, doc, {}, mode_opts);
          EXPECT_TRUE(v.ok()) << label << ": " << v.status().ToString();
          return std::move(v).value();
        };
        EXPECT_EQ(eval_mode(optimized, ResultMode::kExists, 0).boolean(),
                  eval_mode(unoptimized, ResultMode::kExists, 0).boolean())
            << label;
        EXPECT_EQ(eval_mode(optimized, ResultMode::kCount, 0).number(),
                  eval_mode(unoptimized, ResultMode::kCount, 0).number())
            << label;
        EXPECT_EQ(eval_mode(optimized, ResultMode::kFirst, 0).node_set(),
                  eval_mode(unoptimized, ResultMode::kFirst, 0).node_set())
            << label;
        for (uint64_t limit : {1u, 3u}) {
          EXPECT_EQ(
              eval_mode(optimized, ResultMode::kLimit, limit).node_set(),
              eval_mode(unoptimized, ResultMode::kLimit, limit).node_set())
              << label << " limit " << limit;
        }
      }
    }
  }
}

TEST_P(OptimizerDifferentialTest, ScalarQueriesMatchToo) {
  xml::Document doc =
      xml::MakeRandomDocument(60, {"a", "b", "c"}, GetParam());
  for (const char* query : kScalarCorpus) {
    const xpath::CompiledQuery optimized = MustCompile(query);
    const xpath::CompiledQuery unoptimized = CompileUnoptimized(query);
    for (EngineKind engine : test::ConformanceEngines()) {
      for (bool use_index : {false, true}) {
        EvalOptions opts;
        opts.engine = engine;
        opts.use_index = use_index;
        const std::string label =
            std::string(query) + " on " + EngineKindToString(engine) +
            (use_index ? " +index" : " -index");
        StatusOr<Value> want = Evaluate(unoptimized, doc, {}, opts);
        StatusOr<Value> got = Evaluate(optimized, doc, {}, opts);
        ASSERT_TRUE(want.ok() && got.ok()) << label;
        EXPECT_EQ(got->type(), want->type()) << label;
        EXPECT_EQ(got->ToString(doc), want->ToString(doc)) << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerDifferentialTest,
                         testing::Range<uint64_t>(1, 4));

// --- plan-cache canonicalization -------------------------------------------

TEST(OptimizePlanCacheTest, EquivalentSpellingsShareOneCachedPlan) {
  batch::PlanCache cache(8);
  batch::SharedPlan abbreviated = *cache.GetOrCompile("//t");
  batch::SharedPlan explicit_descendant = *cache.GetOrCompile("/descendant::t");
  batch::SharedPlan unabbreviated =
      *cache.GetOrCompile("/descendant-or-self::node()/child::t");
  EXPECT_EQ(abbreviated.get(), explicit_descendant.get())
      << "//t and /descendant::t must dedup onto one plan";
  EXPECT_EQ(abbreviated.get(), unabbreviated.get());
  const batch::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u) << "three source aliases";
  EXPECT_EQ(stats.canonical_shares, 2u) << "two spellings adopted plan #1";
}

TEST(OptimizePlanCacheTest, GetOrCompileQueryServesTheSharedPlan) {
  batch::PlanCache cache(8);
  Query spelled = *cache.GetOrCompileQuery("//t");
  Query canonical = *cache.GetOrCompileQuery("/descendant::t");
  EXPECT_EQ(spelled.shared_plan().get(), canonical.shared_plan().get());
  xml::Document doc = MustParse("<r><t/><u><t/></u></r>");
  EXPECT_EQ(*spelled.Count(doc), 2u);
  EXPECT_EQ(*canonical.Count(doc), 2u);
}

// --- budget parity across all engines (ISSUE 5 satellite) ------------------

TEST(BudgetParityTest, TinyBudgetTripsEveryEngine) {
  // Large enough that every engine's cheapest accounted pass exceeds
  // one unit. The per-engine query keeps each engine on its natural
  // path: kCoreXPath takes the linear path evaluator, kOptMinContext
  // the bottom-up (Wadler) backward propagation that used to skip
  // budget accounting entirely, the rest their table-filling loops.
  xml::Document doc =
      xml::MakeRandomDocument(90, {"a", "b"}, /*seed=*/7);
  for (EngineKind engine : AllEngines()) {
    // The fused plan of a bare //a is one step from one frontier node —
    // a single budget unit — so the linear engine gets a two-step path.
    const char* query =
        engine == EngineKind::kCoreXPath ? "//a//b" : "boolean(//a)";
    EvalOptions options;
    options.engine = engine;
    options.budget = 1;
    StatusOr<Value> v =
        Evaluate(MustCompile(query), doc, EvalContext{}, options);
    ASSERT_FALSE(v.ok()) << EngineKindToString(engine)
                         << " ignored EvalOptions::budget";
    EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted)
        << EngineKindToString(engine);
  }
}

TEST(BudgetParityTest, CountAndLimitModesSurfaceBudgetTripsUniformly) {
  // Regression (ISSUE 9 satellite): kCount used to report budget
  // exhaustion only through the error status while kLimit also left a
  // trace in EvalStats, so stats-parity checks across result modes
  // broke the moment a budget tripped. The dispatcher now records
  // EvalStats::budget_trips centrally — every engine, tier, and result
  // mode identically.
  xml::Document doc = xml::MakeRandomDocument(90, {"a", "b"}, /*seed=*/7);
  for (EngineKind engine : AllEngines()) {
    const char* query =
        engine == EngineKind::kCoreXPath ? "//a//b" : "//a[b]";
    for (index::IndexTier tier :
         {index::IndexTier::kHot, index::IndexTier::kDense}) {
      for (ResultMode mode : {ResultMode::kCount, ResultMode::kLimit}) {
        EvalOptions options;
        options.engine = engine;
        options.index_tier = tier;
        options.budget = 1;
        options.result.mode = mode;
        if (mode == ResultMode::kLimit) options.result.limit = 3;
        EvalStats stats;
        options.stats = &stats;
        StatusOr<Value> v =
            Evaluate(MustCompile(query), doc, EvalContext{}, options);
        const std::string label = std::string(EngineKindToString(engine)) +
                                  "/" + index::IndexTierToString(tier) + "/" +
                                  ResultModeToString(mode);
        ASSERT_FALSE(v.ok()) << label;
        EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted) << label;
        EXPECT_EQ(stats.budget_trips, 1u) << label;
      }
    }
  }
}

TEST(BudgetParityTest, GenerousBudgetPassesEveryEngine) {
  xml::Document doc = xml::MakeRandomDocument(90, {"a", "b"}, /*seed=*/7);
  for (EngineKind engine : AllEngines()) {
    const char* query =
        engine == EngineKind::kCoreXPath ? "//a//b" : "boolean(//a)";
    EvalOptions options;
    options.engine = engine;
    // Roomy even for E↑'s |D|³-row tables on this document.
    options.budget = 1'000'000'000'000;
    EXPECT_TRUE(
        Evaluate(MustCompile(query), doc, EvalContext{}, options).ok())
        << EngineKindToString(engine);
  }
}

}  // namespace
}  // namespace xpe
