// Evaluator sessions: pooled-memory reuse must be invisible in results
// (wrapper equivalence), safe across back-to-back heterogeneous
// evaluations, allocation-stable in steady state, and race-free when one
// session per thread shares a Document.

#include <gtest/gtest.h>

#include <thread>

#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::MustCompile;
using test::MustParse;
using xml::NodeId;

TEST(EvalArenaTest, AllocateExtendReset) {
  EvalArena arena;
  auto* a = static_cast<uint32_t*>(arena.Allocate(4 * sizeof(uint32_t), 4));
  ASSERT_NE(a, nullptr);
  a[0] = 7;
  // The most recent allocation extends in place while its block has room.
  EXPECT_TRUE(arena.TryExtend(a, 4 * sizeof(uint32_t), 8 * sizeof(uint32_t)));
  EXPECT_EQ(a[0], 7u);
  // A newer allocation ends the extendability of the older one.
  void* b = arena.Allocate(16, 8);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(
      arena.TryExtend(a, 8 * sizeof(uint32_t), 16 * sizeof(uint32_t)));

  const size_t reserved = arena.bytes_reserved();
  const uint64_t blocks = arena.block_allocations();
  EXPECT_GT(reserved, 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Reset retains the blocks: the same workload re-runs without a single
  // new block allocation.
  (void)arena.Allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.block_allocations(), blocks);
}

TEST(EvalArenaTest, ArenaVectorGrowsAcrossBlocks) {
  EvalArena arena;
  ArenaVector<NodeId> v(&arena);
  for (NodeId i = 0; i < 10'000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 10'000u);
  for (NodeId i = 0; i < 10'000; ++i) {
    ASSERT_EQ(v[i], i) << "element " << i << " lost during growth";
  }
}

TEST(NodeTableTest, RowsInAnyKeyOrder) {
  EvalArena arena;
  NodeTable table;
  table.Reset(&arena, 5);
  EXPECT_TRUE(table.initialized());
  EXPECT_FALSE(table.has_row(3));

  const NodeId row3[] = {1, 4};
  table.SetRow(3, row3);
  table.BeginRow(0);
  table.PushOrdered(2);
  table.PushOrdered(2);  // adjacent duplicate dropped
  table.PushOrdered(9);
  table.CommitRow();
  table.SetRow(1, std::span<const NodeId>{});  // committed empty row

  EXPECT_TRUE(table.has_row(0));
  EXPECT_TRUE(table.has_row(1));
  EXPECT_TRUE(table.has_row(3));
  EXPECT_FALSE(table.has_row(2));
  EXPECT_EQ(table.RowAsNodeSet(0).ToString(), "{2, 9}");
  EXPECT_EQ(table.RowAsNodeSet(3).ToString(), "{1, 4}");
  EXPECT_TRUE(table.Row(1).empty());
  EXPECT_TRUE(table.Row(2).empty());
  EXPECT_EQ(table.cells(), 4u);

  // Re-setting a row replaces it and keeps the cell count truthful.
  const NodeId row3b[] = {0};
  table.SetRow(3, row3b);
  EXPECT_EQ(table.RowAsNodeSet(3).ToString(), "{0}");
  EXPECT_EQ(table.cells(), 3u);
}

/// Back-to-back evaluations of different queries, documents, engines and
/// contexts on ONE session must match the one-shot wrapper bit-for-bit.
TEST(EvaluatorTest, ReuseAcrossQueriesAndDocumentsMatchesOneShot) {
  const xml::Document doc_a =
      xml::MakeRandomDocument(40, {"a", "b", "c"}, 1234);
  const xml::Document doc_b = MustParse(
      "<r><a id='n1'>100</a><b><c/><c/></b><a>100</a><b ref='n1'/></r>");
  const char* queries[] = {
      "//a",
      "//b[last()]",
      "//a[. = 100]",
      "count(//c) + sum(//a)",
      "//b/preceding-sibling::*",
      "//*[@id]",
      "//a[position() != last()]",
      "(//b)[2]",
  };
  Evaluator session;
  for (EngineKind engine :
       {EngineKind::kBottomUp, EngineKind::kTopDown, EngineKind::kMinContext,
        EngineKind::kOptMinContext}) {
    for (const xml::Document* doc : {&doc_a, &doc_b}) {
      for (const char* query : queries) {
        xpath::CompiledQuery compiled = MustCompile(query);
        EvalOptions options;
        options.engine = engine;
        StatusOr<Value> oneshot = Evaluate(compiled, *doc, {}, options);
        StatusOr<Value> reused = session.Evaluate(compiled, *doc, {}, options);
        ASSERT_TRUE(oneshot.ok()) << query << ": "
                                  << oneshot.status().ToString();
        ASSERT_TRUE(reused.ok()) << query << ": "
                                 << reused.status().ToString();
        EXPECT_TRUE(reused->StructurallyEquals(*oneshot))
            << "query:   " << query
            << "\nengine:  " << EngineKindToString(engine)
            << "\noneshot: " << oneshot->Repr()
            << "\nreused:  " << reused->Repr();
      }
    }
  }
}

/// Non-node-set results and non-root contexts through a session.
TEST(EvaluatorTest, SessionHandlesScalarResultsAndContexts) {
  const xml::Document doc = MustParse("<r><a/><a/><b/></r>");
  Evaluator session;
  StatusOr<NodeSet> b_nodes = session.EvaluateNodeSet(MustCompile("//b"), doc);
  ASSERT_TRUE(b_nodes.ok()) << b_nodes.status().ToString();
  ASSERT_EQ(b_nodes->size(), 1u);
  xpath::CompiledQuery count = MustCompile("count(../a)");
  EvalContext ctx;
  ctx.node = b_nodes->First();
  StatusOr<Value> v = session.Evaluate(count, doc, ctx);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->number(), 2.0);

  StatusOr<NodeSet> bad =
      session.EvaluateNodeSet(MustCompile("1 + 1"), doc, {});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Error paths must not poison the session.
  StatusOr<NodeSet> good = session.EvaluateNodeSet(MustCompile("//a"), doc);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->size(), 2u);
}

/// A warmed-up session stops allocating arena blocks: repeating the same
/// evaluation must not grow the arena.
TEST(EvaluatorTest, SteadyStateAllocatesNoNewArenaBlocks) {
  const xml::Document doc = xml::MakeGrownPaperDocument(8);
  // The predicate is an inner path, so MINCONTEXT builds real arena
  // tables (outermost paths alone stay set-valued per §3.1); top-down
  // builds its per-step pair relation on the arena for any path.
  xpath::CompiledQuery query = MustCompile("//a[b]/descendant::c");
  for (EngineKind engine :
       {EngineKind::kMinContext, EngineKind::kTopDown}) {
    Evaluator session;
    EvalOptions options;
    options.engine = engine;
    for (int warmup = 0; warmup < 2; ++warmup) {
      ASSERT_TRUE(session.Evaluate(query, doc, {}, options).ok());
    }
    const uint64_t blocks = session.arena_block_allocations();
    const size_t reserved = session.arena_bytes_reserved();
    EXPECT_GT(blocks, 0u) << EngineKindToString(engine);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(session.Evaluate(query, doc, {}, options).ok());
    }
    EXPECT_EQ(session.arena_block_allocations(), blocks)
        << EngineKindToString(engine);
    EXPECT_EQ(session.arena_bytes_reserved(), reserved)
        << EngineKindToString(engine);
  }
}

/// One session per thread over one shared Document: results identical to
/// single-threaded, no crashes/races (the Document's lazy caches are the
/// only shared mutable state).
TEST(EvaluatorTest, OneSessionPerThreadOverSharedDocument) {
  const xml::Document doc =
      xml::MakeRandomDocument(60, {"a", "b", "c"}, 4321);
  const char* queries[] = {
      "//a//b",
      "//b[last()]",
      "//c/following-sibling::*",
      "count(//a[b])",
      "//*[@id]",
  };
  // Expected values single-threaded, before any thread touches the
  // document's caches (forces the lazy builds to race in the threads).
  std::vector<Value> expected;
  std::vector<xpath::CompiledQuery> compiled;
  for (const char* query : queries) {
    compiled.push_back(MustCompile(query));
  }
  {
    const xml::Document expectation_doc =
        xml::MakeRandomDocument(60, {"a", "b", "c"}, 4321);
    for (const xpath::CompiledQuery& q : compiled) {
      StatusOr<Value> v = Evaluate(q, expectation_doc, {}, {});
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      expected.push_back(std::move(v).value());
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Evaluator session;
      for (int round = 0; round < kRounds; ++round) {
        for (size_t qi = 0; qi < compiled.size(); ++qi) {
          EvalOptions options;
          options.engine = (t % 2 == 0) ? EngineKind::kOptMinContext
                                        : EngineKind::kTopDown;
          StatusOr<Value> v =
              session.Evaluate(compiled[qi], doc, {}, options);
          if (!v.ok() || !v->StructurallyEquals(expected[qi])) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace xpe
