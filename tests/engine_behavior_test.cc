// Engine-behaviour tests: the properties that distinguish the engines
// (exponential vs polynomial work, table sizes, budgets, fragment
// dispatch) rather than their common semantics. These are the unit-level
// counterparts of the bench/ experiments.

#include <gtest/gtest.h>

#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::MustCompile;

/// Q_n of experiment E1: //a/b[//a/b[...//a/b...]] nested n levels.
std::string NestedQuery(int depth) {
  std::string q = "//a/b";
  for (int i = 0; i < depth; ++i) q = "//a/b[" + q + "]";
  return q;
}

uint64_t NaiveWork(const xml::Document& doc, const std::string& query) {
  EvalStats stats;
  EvalOptions options;
  options.engine = EngineKind::kNaive;
  options.stats = &stats;
  StatusOr<Value> v = Evaluate(MustCompile(query), doc, EvalContext{}, options);
  EXPECT_TRUE(v.ok());
  return stats.contexts_evaluated;
}

TEST(ExponentialBaselineTest, NaiveWorkDoublesPerNestingLevel) {
  // The intro's claim ([11]'s experiment): re-evaluating predicates per
  // context node makes work grow exponentially in |Q| even on the
  // four-node document <a><b/><b/></a>.
  xml::Document doc = xml::MakeExponentialDocument();
  uint64_t w4 = NaiveWork(doc, NestedQuery(4));
  uint64_t w8 = NaiveWork(doc, NestedQuery(8));
  uint64_t w12 = NaiveWork(doc, NestedQuery(12));
  // Each extra level multiplies by |{b,b}| = 2; four levels ≈ 16×.
  EXPECT_GE(w8, w4 * 8);
  EXPECT_GE(w12, w8 * 8);
}

TEST(ExponentialBaselineTest, PolynomialEnginesStayFlat) {
  xml::Document doc = xml::MakeExponentialDocument();
  for (EngineKind engine : {EngineKind::kTopDown, EngineKind::kMinContext,
                            EngineKind::kOptMinContext,
                            EngineKind::kCoreXPath}) {
    EvalStats s8, s16;
    EvalOptions options;
    options.engine = engine;
    options.stats = &s8;
    ASSERT_TRUE(Evaluate(MustCompile(NestedQuery(8)), doc, EvalContext{},
                         options)
                    .ok());
    options.stats = &s16;
    ASSERT_TRUE(Evaluate(MustCompile(NestedQuery(16)), doc, EvalContext{},
                         options)
                    .ok());
    // Work grows at most linearly in |Q| here, far from doubling 8 times.
    const uint64_t work8 = s8.contexts_evaluated + s8.axis_evals;
    const uint64_t work16 = s16.contexts_evaluated + s16.axis_evals;
    EXPECT_LE(work16, work8 * 4 + 64) << EngineKindToString(engine);
  }
}

TEST(ExponentialBaselineTest, NestedQueryIsCoreXPath) {
  // Q_n is Core XPath, so OPTMINCONTEXT dispatches to the linear engine.
  EXPECT_EQ(MustCompile(NestedQuery(6)).fragment(),
            xpath::Fragment::kCoreXPath);
}

TEST(BudgetTest, NaiveRunsOutOfBudget) {
  xml::Document doc = xml::MakeExponentialDocument();
  EvalOptions options;
  options.engine = EngineKind::kNaive;
  options.budget = 1000;
  StatusOr<Value> v =
      Evaluate(MustCompile(NestedQuery(20)), doc, EvalContext{}, options);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, PolynomialEnginesFitTheSameBudget) {
  xml::Document doc = xml::MakeExponentialDocument();
  for (EngineKind engine :
       {EngineKind::kMinContext, EngineKind::kOptMinContext}) {
    EvalOptions options;
    options.engine = engine;
    options.budget = 100'000;
    EXPECT_TRUE(Evaluate(MustCompile(NestedQuery(20)), doc, EvalContext{},
                         options)
                    .ok())
        << EngineKindToString(engine);
  }
}

// --- Space instrumentation (Theorems 7 and 10, unit-scale) --------------------

uint64_t PeakCells(EngineKind engine, const xml::Document& doc,
                   const std::string& query) {
  EvalStats stats;
  EvalOptions options;
  options.engine = engine;
  options.stats = &stats;
  StatusOr<Value> v = Evaluate(MustCompile(query), doc, EvalContext{}, options);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return stats.cells_peak;
}

TEST(SpaceTest, WadlerTablesGrowLinearly) {
  // Example 9's query is Extended Wadler: OPTMINCONTEXT's per-expression
  // tables must grow ~linearly in |D| (Theorem 10). Measure the growth
  // exponent between |D| and 4|D|: for linear growth the ratio is ~4,
  // for quadratic ~16. Accept anything clearly below quadratic.
  const std::string q =
      "/child::r/child::a/descendant::*[boolean(following::d[(position() != "
      "last()) and (preceding-sibling::*/preceding::* = 100)]/"
      "following::d)]";
  xml::Document d1 = xml::MakeGrownPaperDocument(4);
  xml::Document d4 = xml::MakeGrownPaperDocument(16);
  const double ratio =
      static_cast<double>(PeakCells(EngineKind::kOptMinContext, d4, q)) /
      static_cast<double>(PeakCells(EngineKind::kOptMinContext, d1, q));
  EXPECT_LT(ratio, 8.0);  // linear-ish; quadratic would be ≈ 16
}

TEST(SpaceTest, MinContextStaysWithinQuadraticBound) {
  const std::string q =
      "/descendant::*/descendant::*[position() > last()*0.5 or "
      "self::* = 100]";
  for (int width : {2, 4, 8}) {
    xml::Document doc = xml::MakeGrownPaperDocument(width);
    const uint64_t d = doc.size();
    const uint64_t peak = PeakCells(EngineKind::kMinContext, doc, q);
    EXPECT_LE(peak, d * d * 16) << width;  // |Q| table slots, |D|² each
  }
}

TEST(SpaceTest, BottomUpTablesAreCubicallyLarger) {
  // E↑ materializes Θ(|dom|³/2) rows per scalar expression; on the same
  // input its peak must dwarf MINCONTEXT's.
  xml::Document doc = xml::MakeGrownPaperDocument(2);
  const std::string q = "//b[position() = last()]";
  const uint64_t eup = PeakCells(EngineKind::kBottomUp, doc, q);
  const uint64_t mc = PeakCells(EngineKind::kMinContext, doc, q);
  EXPECT_GT(eup, mc * 50);
}

TEST(SpaceTest, BottomUpRefusesHugeDocuments) {
  xml::Document doc = xml::MakeNumericDocument(400);
  EvalOptions options;
  options.engine = EngineKind::kBottomUp;
  StatusOr<Value> v =
      Evaluate(MustCompile("//v"), doc, EvalContext{}, options);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
}

// --- Engine dispatch and argument validation ----------------------------------

TEST(DispatchTest, CoreEngineRejectsNonCoreQueries) {
  xml::Document doc = xml::MakePaperDocument();
  EvalOptions options;
  options.engine = EngineKind::kCoreXPath;
  StatusOr<Value> v = Evaluate(MustCompile("//b[position() = 1]"), doc,
                               EvalContext{}, options);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(DispatchTest, InvalidContextRejected) {
  xml::Document doc = xml::MakePaperDocument();
  xpath::CompiledQuery q = MustCompile("//b");
  EvalContext bad_node;
  bad_node.node = doc.size() + 5;
  EXPECT_FALSE(Evaluate(q, doc, bad_node).ok());
  EvalContext bad_pos;
  bad_pos.position = 5;
  bad_pos.size = 2;
  EXPECT_FALSE(Evaluate(q, doc, bad_pos).ok());
}

TEST(DispatchTest, EvaluateNodeSetRejectsScalars) {
  xml::Document doc = xml::MakePaperDocument();
  StatusOr<NodeSet> r = EvaluateNodeSet(MustCompile("count(//b)"), doc);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DispatchTest, EngineNamesAreStable) {
  EXPECT_STREQ(EngineKindToString(EngineKind::kNaive), "naive");
  EXPECT_STREQ(EngineKindToString(EngineKind::kBottomUp), "bottom-up");
  EXPECT_STREQ(EngineKindToString(EngineKind::kTopDown), "top-down");
  EXPECT_STREQ(EngineKindToString(EngineKind::kMinContext), "mincontext");
  EXPECT_STREQ(EngineKindToString(EngineKind::kOptMinContext),
               "optmincontext");
  EXPECT_STREQ(EngineKindToString(EngineKind::kCoreXPath), "corexpath");
  EXPECT_EQ(AllEngines().size(), static_cast<size_t>(kNumEngines));
}

TEST(StatsTest, ToStringAndReset) {
  EvalStats stats;
  stats.AddCells(10);
  stats.ReleaseCells(4);
  stats.AddCells(2);
  EXPECT_EQ(stats.cells_allocated, 12u);
  EXPECT_EQ(stats.cells_live, 8u);
  EXPECT_EQ(stats.cells_peak, 10u);
  EXPECT_NE(stats.ToString().find("cells_peak=10"), std::string::npos);
  stats.Reset();
  EXPECT_EQ(stats.cells_allocated, 0u);
}

}  // namespace
}  // namespace xpe
