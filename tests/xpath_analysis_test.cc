// Tests for the analysis passes: normalization (explicit conversions,
// positional predicates, id-axis rewriting, variables), static typing,
// relevant-context computation (§3.1, Example 3) and fragment
// classification (Core XPath Definition 12, Extended Wadler Restrictions
// 1-3).

#include <gtest/gtest.h>

#include "src/xpath/compile.h"
#include "tests/test_util.h"

namespace xpe::xpath {
namespace {

using test::MustCompile;

std::string Normalized(std::string_view query, CompileOptions options = {}) {
  // These tests pin the *normal form*; the optimizer's rewrites on top
  // of it are pinned separately in optimize_test.cc.
  options.optimize = false;
  return MustCompile(query, options).tree().ToString();
}

// --- Normalization ----------------------------------------------------------

TEST(NormalizeTest, NumericPredicateBecomesPositional) {
  EXPECT_EQ(Normalized("a[1]"), "child::a[(position() = 1)]");
  EXPECT_EQ(Normalized("a[last()]"), "child::a[(position() = last())]");
  EXPECT_EQ(Normalized("a[position()]"),
            "child::a[(position() = position())]");
}

TEST(NormalizeTest, NonBooleanPredicatesWrapInBoolean) {
  EXPECT_EQ(Normalized("a[b]"), "child::a[boolean(child::b)]");
  EXPECT_EQ(Normalized("a['x']"), "child::a[boolean('x')]");
  EXPECT_EQ(Normalized("a[b = 1]"), "child::a[(child::b = 1)]");
}

TEST(NormalizeTest, AndOrOperandsBecomeBoolean) {
  EXPECT_EQ(Normalized("a[b and c]"),
            "child::a[(boolean(child::b) and boolean(child::c))]");
  EXPECT_EQ(Normalized("a[1 or b]"),
            "child::a[(boolean(1) or boolean(child::b))]");
}

TEST(NormalizeTest, ArithmeticOperandsBecomeNumbers) {
  EXPECT_EQ(Normalized("'1' + 2"), "(number('1') + 2)");
  EXPECT_EQ(Normalized("a + 1"), "(number(child::a) + 1)");
  EXPECT_EQ(Normalized("-a"), "-number(child::a)");
}

TEST(NormalizeTest, ComparisonsStayPolymorphic) {
  // Figure 1 dispatches comparisons at runtime; no conversions inserted.
  EXPECT_EQ(Normalized("a = 100"), "(child::a = 100)");
  EXPECT_EQ(Normalized("a = b"), "(child::a = child::b)");
  EXPECT_EQ(Normalized("a > 'x'"), "(child::a > 'x')");
}

TEST(NormalizeTest, FunctionArgumentConversions) {
  EXPECT_EQ(Normalized("starts-with(a, 1)"),
            "starts-with(string(child::a), string(1))");
  EXPECT_EQ(Normalized("not(a)"), "not(boolean(child::a))");
  EXPECT_EQ(Normalized("floor('3.7')"), "floor(number('3.7'))");
  EXPECT_EQ(Normalized("concat(1, true())"),
            "concat(string(1), string(true()))");
}

TEST(NormalizeTest, ZeroArgContextFunctions) {
  EXPECT_EQ(Normalized("string()"), "string(self::node())");
  EXPECT_EQ(Normalized("number()"), "number(self::node())");
  EXPECT_EQ(Normalized("string-length()"),
            "string-length(string(self::node()))");
  EXPECT_EQ(Normalized("normalize-space()"),
            "normalize-space(string(self::node()))");
  EXPECT_EQ(Normalized("name()"), "name(self::node())");
}

TEST(NormalizeTest, IdWithNodeSetBecomesIdAxis) {
  // §4: id(id(π)) is rewritten to π/id/id internally. The canonical
  // printer renders id-steps back as id(...) so the form reparses.
  EXPECT_EQ(Normalized("id(a)"), "id(child::a)");
  EXPECT_EQ(Normalized("id(id(a))"), "id(id(child::a))");
  EXPECT_EQ(Normalized("id(//b)/c"),
            "id(/descendant-or-self::node()/child::b)/child::c");
  // Internally these are single paths with id-axis steps: the first step
  // chain of id(a) has two steps (child::a, id).
  xpath::CompiledQuery q = MustCompile("id(a)");
  const AstNode& root = q.tree().node(q.tree().root());
  ASSERT_EQ(root.kind, ExprKind::kPath);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(q.tree().node(root.children[1]).axis, Axis::kId);
}

TEST(NormalizeTest, IdWithScalarConverts) {
  EXPECT_EQ(Normalized("id('x')"), "id('x')");
  EXPECT_EQ(Normalized("id(1)"), "id(string(1))");
}

TEST(NormalizeTest, UnionDistributesOverBooleanAndComparisons) {
  // §4: boolean(π1|π2) → boolean(π1) or boolean(π2), and the same for
  // comparisons, so bottom-up paths never see '|'.
  EXPECT_EQ(Normalized("a[b | c]"),
            "child::a[(boolean(child::b) or boolean(child::c))]");
  EXPECT_EQ(Normalized("a[(b | c) = 100]"),
            "child::a[((child::b = 100) or (child::c = 100))]");
  EXPECT_EQ(Normalized("a[100 = (b | c)]"),
            "child::a[((100 = child::b) or (100 = child::c))]");
}

TEST(NormalizeTest, VariablesSubstitute) {
  CompileOptions options;
  options.bindings["n"] = ScalarBinding::Number(4);
  options.bindings["s"] = ScalarBinding::String("hi");
  options.bindings["b"] = ScalarBinding::Boolean(true);
  EXPECT_EQ(Normalized("a[$n]", options), "child::a[(position() = 4)]");
  EXPECT_EQ(Normalized("$s", options), "'hi'");
  EXPECT_EQ(Normalized("$b", options), "true()");
}

TEST(NormalizeTest, UnboundVariableFails) {
  StatusOr<CompiledQuery> q = Compile("$nope");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidQuery);
}

TEST(NormalizeTest, TypeErrors) {
  // No conversion *to* node-set exists in XPath 1.0.
  EXPECT_FALSE(Compile("count(1)").ok());
  EXPECT_FALSE(Compile("sum('x')").ok());
  EXPECT_FALSE(Compile("1[2]").ok());
  EXPECT_FALSE(Compile("'a' | b").ok());
  EXPECT_FALSE(Compile("count(true())").ok());
}

TEST(NormalizeTest, ResultTypes) {
  EXPECT_EQ(MustCompile("//a").result_type(), ValueType::kNodeSet);
  EXPECT_EQ(MustCompile("count(//a)").result_type(), ValueType::kNumber);
  EXPECT_EQ(MustCompile("'s'").result_type(), ValueType::kString);
  EXPECT_EQ(MustCompile("a = b").result_type(), ValueType::kBoolean);
  EXPECT_EQ(MustCompile("a | b").result_type(), ValueType::kNodeSet);
  EXPECT_EQ(MustCompile("(a)[1]").result_type(), ValueType::kNodeSet);
}

// --- Relevance (§3.1) -------------------------------------------------------

/// Finds the first node whose rendering equals `text` (depth-first).
AstId FindNode(const QueryTree& tree, const std::string& text) {
  for (AstId id = 0; id < tree.size(); ++id) {
    if (tree.ToString(id) == text) return id;
  }
  ADD_FAILURE() << "no node rendering as: " << text;
  return kInvalidAstId;
}

uint8_t RelevOf(const CompiledQuery& q, const std::string& text) {
  return q.tree().node(FindNode(q.tree(), text)).relev;
}

TEST(RelevanceTest, Example3FromThePaper) {
  // Relev(N6)= {cp}, Relev(N7)= {cs}, Relev(N8)= {cn}, Relev(N9)= ∅,
  // Relev(N1)=Relev(N2)= {cn}, Relev(N3)=Relev(N4)= {cn,cp,cs},
  // Relev(N5)= {cn}.
  CompiledQuery q = MustCompile(
      "/descendant::*/descendant::*[position() > last()*0.5 or "
      "self::* = 100]");
  const QueryTree& t = q.tree();
  EXPECT_EQ(RelevOf(q, "position()"), kRelevCp);                    // N6
  EXPECT_EQ(RelevOf(q, "(last() * 0.5)"), kRelevCs);                // N7
  EXPECT_EQ(RelevOf(q, "self::*"), kRelevCn);                       // N8
  EXPECT_EQ(RelevOf(q, "100"), 0);                                  // N9
  EXPECT_EQ(RelevOf(q, "(self::* = 100)"), kRelevCn);               // N5
  // The paper's example text lists Relev(N4) = {cn,cp,cs}, but §3.1's own
  // compound rule gives Relev(position()) ∪ Relev(last()*0.5) = {cp,cs};
  // we follow the rule (the extra 'cn' would only enlarge tables).
  EXPECT_EQ(RelevOf(q, "(position() > (last() * 0.5))"),
            kRelevCp | kRelevCs);                                   // N4
  EXPECT_EQ(
      RelevOf(q, "((position() > (last() * 0.5)) or (self::* = 100))"),
      kRelevCn | kRelevCp | kRelevCs);                              // N3
  EXPECT_EQ(t.node(t.root()).relev, kRelevCn);                      // N1
}

TEST(RelevanceTest, ConstantsAndContextFunctions) {
  EXPECT_EQ(RelevOf(MustCompile("true()"), "true()"), 0);
  EXPECT_EQ(RelevOf(MustCompile("'x'"), "'x'"), 0);
  EXPECT_EQ(RelevOf(MustCompile("1 + 2"), "(1 + 2)"), 0);
  EXPECT_EQ(RelevOf(MustCompile("string()"), "string(self::node())"),
            kRelevCn);
  EXPECT_EQ(RelevOf(MustCompile("count(a)"), "count(child::a)"), kRelevCn);
}

TEST(RelevanceTest, PredicatesDoNotLeakPositionUpward) {
  // position() inside a predicate is internal to the step's node list:
  // the path still depends on cn only.
  CompiledQuery q = MustCompile("a[position() = 2]/b");
  EXPECT_EQ(q.tree().node(q.tree().root()).relev, kRelevCn);
}

TEST(RelevanceTest, MixedOperatorUnions) {
  CompiledQuery q = MustCompile("count(a) + position() + last()");
  EXPECT_EQ(q.tree().node(q.tree().root()).relev,
            kRelevCn | kRelevCp | kRelevCs);
}

TEST(RelevanceTest, RelevToString) {
  EXPECT_EQ(RelevToString(0), "{}");
  EXPECT_EQ(RelevToString(kRelevCn), "{cn}");
  EXPECT_EQ(RelevToString(kRelevCn | kRelevCp | kRelevCs), "{cn,cp,cs}");
}

// --- Fragments (§4, Definition 12) -------------------------------------------

TEST(FragmentTest, CoreXPathMembers) {
  for (const char* q : {
           "/child::a/descendant::b",
           "//a/b",
           "a[b]",
           "a[b and not(c)]",
           "a[.//b or following-sibling::c]",
           "/descendant::*[child::b[child::c]]",
           "ancestor::a[parent::b]",
       }) {
    EXPECT_EQ(MustCompile(q).fragment(), Fragment::kCoreXPath) << q;
  }
}

TEST(FragmentTest, CoreXPathNonMembers) {
  for (const char* q : {
           "a[position() = 2]",          // position
           "a[last()]",                  // last
           "a[b = 100]",                 // comparison
           "count(a)",                   // function result
           "a[count(b) > 1]",            // count
           "id('x')",                    // id
           "a | b",                      // top-level union (per Def. 12)
       }) {
    EXPECT_NE(MustCompile(q).fragment(), Fragment::kCoreXPath) << q;
  }
}

TEST(FragmentTest, ExtendedWadlerMembers) {
  for (const char* q : {
           // The paper's running example and Example 9 are both Wadler.
           "/descendant::*/descendant::*[position() > last()*0.5 or "
           "self::* = 100]",
           "/child::a/descendant::*[boolean(following::d[(position() != "
           "last()) and (preceding-sibling::*/preceding::* = 100)]/"
           "following::d)]",
           "a[position() = last() - 1]",
           "a[b = 'x']",
           "a[id('k')]",
           "a[. = 100]",
       }) {
    CompiledQuery compiled = MustCompile(q);
    EXPECT_NE(compiled.fragment(), Fragment::kFullXPath) << q;
  }
}

TEST(FragmentTest, Restriction1Violations) {
  for (const char* q : {
           "a[string-length(.) > 2]",
           "a[normalize-space(.) = 'x']",
           "a[name() = 'b']",
           "a[local-name(.) = 'b']",
           "a[string(b) = 'x']",
           "a[number(b) = 1]",
       }) {
    EXPECT_EQ(MustCompile(q).fragment(), Fragment::kFullXPath) << q;
  }
}

TEST(FragmentTest, Restriction2Violations) {
  for (const char* q : {
           "a[b = c]",               // nset RelOp nset
           "a[count(b) = 1]",        // count
           "a[sum(b) > 10]",         // sum
           "a[b = position()]",      // scalar depends on context
           "a[b = string(.)]",       // context-dependent scalar
       }) {
    EXPECT_EQ(MustCompile(q).fragment(), Fragment::kFullXPath) << q;
  }
}

TEST(FragmentTest, Restriction3Violations) {
  EXPECT_EQ(MustCompile("a[id(string(.))]").fragment(), Fragment::kFullXPath);
  // id over a constant string is fine.
  EXPECT_NE(MustCompile("a[id('k')]").fragment(), Fragment::kFullXPath);
}

TEST(FragmentTest, ConstantConversionsAllowedInWadler) {
  // Normalizer-inserted conversions around constants keep scalar sizes
  // data-independent and stay inside the fragment (DESIGN.md refinement).
  EXPECT_NE(MustCompile("a['1' + 1 = position()]").fragment(),
            Fragment::kFullXPath);
}

TEST(FragmentTest, BottomUpEligibilityMarks) {
  CompiledQuery q = MustCompile("/a/b[boolean(following::d)]");
  bool found = false;
  for (AstId id = 0; id < q.tree().size(); ++id) {
    if (q.tree().node(id).bottom_up_eligible) {
      found = true;
      EXPECT_EQ(q.tree().ToString(id), "boolean(following::d)");
    }
  }
  EXPECT_TRUE(found);
}

TEST(FragmentTest, NestedBottomUpMarksInnermostToo) {
  // Example 9 has two eligible occurrences: boolean(π) and ρ = 100.
  CompiledQuery q = MustCompile(
      "/child::a/descendant::*[boolean(following::d[(position() != last()) "
      "and (preceding-sibling::*/preceding::* = 100)]/following::d)]");
  int count = 0;
  for (AstId id = 0; id < q.tree().size(); ++id) {
    if (q.tree().node(id).bottom_up_eligible) ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(FragmentTest, FragmentNames) {
  EXPECT_STREQ(FragmentToString(Fragment::kCoreXPath), "CoreXPath");
  EXPECT_STREQ(FragmentToString(Fragment::kExtendedWadler), "ExtendedWadler");
  EXPECT_STREQ(FragmentToString(Fragment::kFullXPath), "FullXPath");
}

}  // namespace
}  // namespace xpe::xpath
