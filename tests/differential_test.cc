// Differential testing: random documents × a query corpus, all engines
// must agree bit-for-bit with the naive evaluator (the executable
// specification). This is the property-style complement to the golden
// conformance suite.

#include <gtest/gtest.h>

#include "src/batch/plan_cache.h"
#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::MustCompile;

/// Query corpus: every axis, positions, values, ids, unions, filters,
/// nested paths — compiled once, reused across documents.
const char* kQueryCorpus[] = {
    "//a",
    "//a/b",
    "//a//b",
    "/descendant::*",
    "//b[1]",
    "//b[last()]",
    "//a[position() = 2]",
    "//a[position() mod 2 = 0]",
    "//*[. = 100]",
    "//a[b]",
    "//a[not(b)]",
    "//a[b and c]",
    "//a[b or c]",
    "//a[.//c]",
    "//b/parent::a",
    "//b/ancestor::*",
    "//b/ancestor-or-self::a",
    "//c/following-sibling::*",
    "//c/preceding-sibling::*",
    "//b/following::c",
    "//b/preceding::c",
    "//a/descendant-or-self::c",
    "//*[@id]",
    "//*[@id = 'n10']",
    "//a[count(b) > 1]",
    "//a[count(.//c) = 0]",
    "//*[self::a = 100]",
    "//a[b = 100]",
    "//a[b = c]",
    "//*[sum(b) > 50]",
    "(//b)[2]",
    "(//a | //b)[3]",
    "//a | //c",
    "//a[string-length(.) > 4]",
    "//a[contains(., '1')]",
    "//*[starts-with(name(), 'b')]",
    "//a[position() = last()]/b",
    "//b[position() != last()]",
    "//a[boolean(b[2]/following-sibling::c)]",
    "//c[preceding-sibling::*/preceding::* = 100]",
    "//a[number(.) = 100]",
    "count(//a)",
    "count(//a[b])",
    "sum(//b) + count(//c)",
    "string(//a)",
    "boolean(//a[4])",
    "//a = //b",
    "//a[. = ../b]",
    "//*[text()]",
    "//b[../c]",
};

/// The index axis every differential loop sweeps: no index at all, the
/// flat hot tier, and the succinct dense tier. The tiers must be
/// mutually bit-identical — in results AND in EvalStats (same kernels,
/// same counting) — and all three must agree with the naive engine.
struct IndexConfig {
  const char* label;
  bool use_index;
  index::IndexTier tier;  // meaningful only when use_index
};
constexpr IndexConfig kIndexConfigs[] = {
    {"scan", false, index::IndexTier::kHot},
    {"hot", true, index::IndexTier::kHot},
    {"dense", true, index::IndexTier::kDense},
};

EvalOptions ConfigOptions(const IndexConfig& config, EngineKind engine) {
  EvalOptions opts;
  opts.engine = engine;
  opts.use_index = config.use_index;
  if (config.use_index) opts.index_tier = config.tier;
  return opts;
}

class DifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllEnginesAgreeWithNaive) {
  xml::Document doc =
      xml::MakeRandomDocument(30, {"a", "b", "c"}, GetParam());
  for (const char* query : kQueryCorpus) {
    xpath::CompiledQuery compiled = MustCompile(query);
    EvalOptions naive_opts;
    naive_opts.engine = EngineKind::kNaive;
    naive_opts.budget = 50'000'000;
    StatusOr<Value> expected =
        Evaluate(compiled, doc, EvalContext{}, naive_opts);
    ASSERT_TRUE(expected.ok()) << query << ": "
                               << expected.status().ToString();

    std::vector<EngineKind> engines = {
        EngineKind::kBottomUp, EngineKind::kTopDown, EngineKind::kMinContext,
        EngineKind::kOptMinContext};
    if (compiled.fragment() == xpath::Fragment::kCoreXPath) {
      engines.push_back(EngineKind::kCoreXPath);
    }
    for (EngineKind engine : engines) {
      // Indexed step kernels (and the tier backing them) must be
      // invisible in the results: every engine agrees with the
      // (index-free) naive engine under all three index configs, and
      // the two indexed tiers also agree on every stats counter.
      std::string hot_stats, dense_stats;
      for (const IndexConfig& config : kIndexConfigs) {
        EvalOptions opts = ConfigOptions(config, engine);
        EvalStats stats;
        opts.stats = &stats;
        StatusOr<Value> actual = Evaluate(compiled, doc, EvalContext{}, opts);
        ASSERT_TRUE(actual.ok())
            << query << " on " << EngineKindToString(engine) << ": "
            << actual.status().ToString();
        EXPECT_TRUE(actual->StructurallyEquals(*expected))
            << "query:    " << query << "\nengine:   "
            << EngineKindToString(engine)
            << "\nindex:    " << config.label
            << "\nseed:     " << GetParam()
            << "\nexpected: " << expected->Repr()
            << "\nactual:   " << actual->Repr();
        if (config.use_index) {
          (config.tier == index::IndexTier::kHot ? hot_stats : dense_stats) =
              stats.ToString();
        }
      }
      EXPECT_EQ(hot_stats, dense_stats)
          << "stats diverged across tiers: " << query << " on "
          << EngineKindToString(engine) << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         testing::Range<uint64_t>(1, 21));

/// The same corpus evaluated from non-root context nodes.
class RelativeDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RelativeDifferentialTest, AgreeFromEveryContextNode) {
  xml::Document doc =
      xml::MakeRandomDocument(15, {"a", "b", "c"}, GetParam() * 977);
  const char* queries[] = {
      "b", "b/c", ".//c", "..", "../b", "following::b[1]",
      "preceding-sibling::*", "b[. = ../c]", "self::a | b",
      "count(ancestor::*)",
  };
  for (const char* query : queries) {
    xpath::CompiledQuery compiled = MustCompile(query);
    for (xml::NodeId cn = 0; cn < doc.size(); cn += 3) {
      if (doc.IsAttribute(cn)) continue;
      EvalContext ctx;
      ctx.node = cn;
      EvalOptions naive_opts;
      naive_opts.engine = EngineKind::kNaive;
      StatusOr<Value> expected = Evaluate(compiled, doc, ctx, naive_opts);
      ASSERT_TRUE(expected.ok());
      for (EngineKind engine :
           {EngineKind::kTopDown, EngineKind::kMinContext,
            EngineKind::kOptMinContext, EngineKind::kBottomUp}) {
        for (const IndexConfig& config : kIndexConfigs) {
          EvalOptions opts = ConfigOptions(config, engine);
          StatusOr<Value> actual = Evaluate(compiled, doc, ctx, opts);
          ASSERT_TRUE(actual.ok()) << query;
          EXPECT_TRUE(actual->StructurallyEquals(*expected))
              << "query: " << query << " cn=" << cn << " engine "
              << EngineKindToString(engine) << " index " << config.label
              << "\nexpected " << expected->Repr() << "\nactual "
              << actual->Repr();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelativeDifferentialTest,
                         testing::Range<uint64_t>(1, 9));

/// Growing documents: engines stay in agreement as |D| scales, and the
/// grown paper document preserves the running example's per-copy result.
TEST(ScalingAgreementTest, GrownPaperDocument) {
  for (int width : {1, 2, 5}) {
    xml::Document doc = xml::MakeGrownPaperDocument(width);
    xpath::CompiledQuery q = MustCompile(
        "//b/descendant::*[position() > last()*0.5 or self::* = 100]");
    StatusOr<Value> naive = Evaluate(
        q, doc, EvalContext{},
        EvalOptions{.engine = EngineKind::kNaive, .budget = 100'000'000});
    ASSERT_TRUE(naive.ok());
    for (EngineKind engine : {EngineKind::kTopDown, EngineKind::kMinContext,
                              EngineKind::kOptMinContext}) {
      StatusOr<Value> v =
          Evaluate(q, doc, EvalContext{}, EvalOptions{.engine = engine});
      ASSERT_TRUE(v.ok());
      EXPECT_TRUE(v->StructurallyEquals(*naive))
          << width << " " << EngineKindToString(engine);
    }
    // Per copy: each <b> contributes its second-half/=100 descendants.
    EXPECT_EQ(naive->node_set().size(), 4u * width);
  }
}

/// Join-heavy queries on the XMark-flavoured auction corpus, across
/// engines (the id()-based joins stress deref_ids and the id-axis).
class AuctionDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(AuctionDifferentialTest, EnginesAgreeOnJoins) {
  xml::Document doc = xml::MakeAuctionDocument(8, GetParam());
  const char* queries[] = {
      "count(//person)",
      "count(//open_auction)",
      "//person[creditcard]/name",
      "id(//itemref)/name",
      "id(//bidder/personref)/city",
      "//open_auction[count(bidder) > 2]",
      "//open_auction[current > 100]/itemref",
      "//item[reserve < 50]/name",
      "//open_auction[bidder[last()]/increase = current]",
      "//person[. = id(//personref)]",
      "sum(//current) > sum(//reserve)",
      "//open_auction[id(itemref)/reserve < current]",
  };
  for (const char* query : queries) {
    xpath::CompiledQuery compiled = MustCompile(query);
    EvalOptions naive_opts;
    naive_opts.engine = EngineKind::kNaive;
    naive_opts.budget = 50'000'000;
    StatusOr<Value> expected =
        Evaluate(compiled, doc, EvalContext{}, naive_opts);
    ASSERT_TRUE(expected.ok()) << query;
    for (EngineKind engine : {EngineKind::kTopDown, EngineKind::kMinContext,
                              EngineKind::kOptMinContext,
                              EngineKind::kBottomUp}) {
      for (const IndexConfig& config : kIndexConfigs) {
        EvalOptions opts = ConfigOptions(config, engine);
        StatusOr<Value> actual = Evaluate(compiled, doc, EvalContext{}, opts);
        ASSERT_TRUE(actual.ok()) << query;
        EXPECT_TRUE(actual->StructurallyEquals(*expected))
            << query << " on " << EngineKindToString(engine) << " index "
            << config.label << " seed " << GetParam() << "\nexpected "
            << expected->Repr() << "\nactual " << actual->Repr();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuctionDifferentialTest,
                         testing::Values(1, 7, 42, 1234));

/// The whole corpus once more, but through ONE reused Evaluator session
/// per engine: pooled arenas and flat tables must be invisible in the
/// results even when a session carries state across the full query mix
/// and several documents (the flat-table vs. seed-semantics differential
/// of the session refactor).
class SessionDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SessionDifferentialTest, ReusedSessionAgreesWithNaive) {
  xml::Document doc_a =
      xml::MakeRandomDocument(30, {"a", "b", "c"}, GetParam());
  xml::Document doc_b =
      xml::MakeRandomDocument(24, {"a", "b", "c"}, GetParam() + 5000);
  for (EngineKind engine : {EngineKind::kTopDown, EngineKind::kMinContext,
                            EngineKind::kOptMinContext,
                            EngineKind::kBottomUp}) {
    Evaluator session;
    for (const xml::Document* doc : {&doc_a, &doc_b}) {
      for (const char* query : kQueryCorpus) {
        xpath::CompiledQuery compiled = MustCompile(query);
        EvalOptions naive_opts;
        naive_opts.engine = EngineKind::kNaive;
        naive_opts.budget = 50'000'000;
        StatusOr<Value> expected =
            Evaluate(compiled, *doc, EvalContext{}, naive_opts);
        ASSERT_TRUE(expected.ok()) << query;
        EvalOptions opts;
        opts.engine = engine;
        StatusOr<Value> actual =
            session.Evaluate(compiled, *doc, EvalContext{}, opts);
        ASSERT_TRUE(actual.ok())
            << query << " on session " << EngineKindToString(engine) << ": "
            << actual.status().ToString();
        EXPECT_TRUE(actual->StructurallyEquals(*expected))
            << "query:   " << query << "\nengine:  "
            << EngineKindToString(engine) << " (reused session)"
            << "\nseed:    " << GetParam()
            << "\nexpected " << expected->Repr() << "\nactual "
            << actual->Repr();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionDifferentialTest,
                         testing::Values<uint64_t>(3, 11));

/// Cached-plan mode: the whole corpus replayed with plans served by one
/// shared PlanCache instead of fresh compiles. Same normalized key ⇒
/// the cached (and canonically deduplicated) plan must produce results
/// bit-for-bit identical to a fresh compile, on every engine — the
/// correctness contract that lets a server cache plans at all.
class CachedPlanDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CachedPlanDifferentialTest, CachedPlanMatchesFreshCompile) {
  xml::Document doc =
      xml::MakeRandomDocument(30, {"a", "b", "c"}, GetParam() * 31);
  // Tight capacity on the second pass: every query is compiled fresh,
  // served hot, evicted, and recompiled — eviction must be invisible too.
  for (size_t capacity : {size_t{1024}, size_t{3}}) {
    batch::PlanCache cache(capacity);
    // Two passes: pass 0 populates (all misses at large capacity), pass
    // 1 replays (all hits at large capacity, churn at capacity 3).
    for (int pass = 0; pass < 2; ++pass) {
      for (const char* query : kQueryCorpus) {
        StatusOr<batch::SharedPlan> cached = cache.GetOrCompile(query);
        ASSERT_TRUE(cached.ok()) << query << ": "
                                 << cached.status().ToString();
        xpath::CompiledQuery fresh = MustCompile(query);
        EXPECT_EQ((*cached)->canonical_key(), fresh.canonical_key()) << query;
        for (EngineKind engine :
             {EngineKind::kBottomUp, EngineKind::kTopDown,
              EngineKind::kMinContext, EngineKind::kOptMinContext}) {
          EvalOptions opts;
          opts.engine = engine;
          StatusOr<Value> expected = Evaluate(fresh, doc, EvalContext{}, opts);
          StatusOr<Value> actual = Evaluate(**cached, doc, EvalContext{}, opts);
          ASSERT_TRUE(expected.ok()) << query;
          ASSERT_TRUE(actual.ok()) << query;
          EXPECT_TRUE(actual->StructurallyEquals(*expected))
              << "query:    " << query << "\nengine:   "
              << EngineKindToString(engine) << "\ncapacity: " << capacity
              << " pass " << pass << "\nexpected: " << expected->Repr()
              << "\nactual:   " << actual->Repr();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedPlanDifferentialTest,
                         testing::Values<uint64_t>(2, 9));

}  // namespace
}  // namespace xpe
