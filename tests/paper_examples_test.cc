// Locks down every worked example of the paper:
//  - §2.4 running example: the query e on the Figure 2 document, the
//    context-value tables of Figures 4 and 5, and the final result;
//  - Example 4 (outermost paths as node sets);
//  - Example 5 (the ⟨cp,cs⟩ loop outcome);
//  - §5 Example 9: the OPTMINCONTEXT bottom-up trace and result.
// Two documented paper errata are covered by PaperErrata* tests below.

#include <gtest/gtest.h>

#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::ConformanceEngines;
using test::MustCompile;

constexpr const char* kRunningExample =
    "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]";

constexpr const char* kExample9 =
    "/child::a/descendant::*[boolean(following::d[(position() != last()) and "
    "(preceding-sibling::*/preceding::* = 100)]/following::d)]";

class PaperExamplesTest : public testing::Test {
 protected:
  PaperExamplesTest() : doc_(xml::MakePaperDocument()) {}

  xml::NodeId X(const std::string& id) const {
    return *doc_.GetElementById(id);
  }

  /// Evaluates relative to context node x<id> and renders ids.
  std::vector<std::string> Run(std::string_view query, const std::string& cn,
                               EngineKind engine) {
    EvalContext ctx;
    ctx.node = X(cn);
    return test::EvalIds(query, doc_, engine, ctx);
  }

  xml::Document doc_;
};

TEST_F(PaperExamplesTest, RunningExampleFinalResult) {
  // "The final result of evaluating e is {x13, x14, x21, x22, x23, x24}."
  const std::vector<std::string> expected = {"13", "14", "21",
                                             "22", "23", "24"};
  for (EngineKind engine : ConformanceEngines()) {
    EXPECT_EQ(Run(kRunningExample, "10", engine), expected)
        << EngineKindToString(engine);
  }
}

TEST_F(PaperExamplesTest, Figure4TableN2) {
  // table(N2): cn=x10 → {x14,x21,x22,x23,x24}; x11 → {x13,x14};
  // x21 → {x23,x24}. N2 is the *relative* subexpression
  // descendant::*[...] evaluated at each previous context node.
  const char* n2 =
      "descendant::*[position() > last()*0.5 or self::* = 100]";
  EXPECT_EQ(Run(n2, "10", EngineKind::kMinContext),
            (std::vector<std::string>{"14", "21", "22", "23", "24"}));
  EXPECT_EQ(Run(n2, "11", EngineKind::kMinContext),
            (std::vector<std::string>{"13", "14"}));
  EXPECT_EQ(Run(n2, "21", EngineKind::kMinContext),
            (std::vector<std::string>{"23", "24"}));
  // "the resulting node set is empty for all values of cn except
  //  {x10, x11, x21}" — spot-check a few.
  for (const char* cn : {"12", "13", "14", "22", "23", "24"}) {
    EXPECT_TRUE(Run(n2, cn, EngineKind::kMinContext).empty()) << cn;
  }
}

TEST_F(PaperExamplesTest, Figure4TableN3Rows) {
  // Predicate rows for the context list reached via x10 (cs = 8):
  // false for positions 1..3 except where self::*=100; true from 4 on.
  xpath::CompiledQuery pred = MustCompile(
      "position() > last()*0.5 or self::* = 100");
  struct Row {
    const char* cn;
    uint32_t cp, cs;
    bool expected;
  };
  const Row rows[] = {
      {"11", 1, 8, false}, {"12", 2, 8, false}, {"13", 3, 8, false},
      {"14", 4, 8, true},  {"21", 5, 8, true},  {"22", 6, 8, true},
      {"23", 7, 8, true},  {"24", 8, 8, true},  {"12", 1, 3, false},
      {"13", 2, 3, true},  {"14", 3, 3, true},  {"22", 1, 3, false},
      {"23", 2, 3, true},  {"24", 3, 3, true},
  };
  for (const Row& row : rows) {
    EvalContext ctx{X(row.cn), row.cp, row.cs};
    StatusOr<Value> v = Evaluate(pred, doc_, ctx);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->boolean(), row.expected)
        << "cn=x" << row.cn << " cp=" << row.cp << " cs=" << row.cs;
  }
}

TEST_F(PaperExamplesTest, Figure5TableN5RestrictedToCn) {
  // N5 = self::* = 100, keyed by cn only (Relev(N5) = {cn}).
  xpath::CompiledQuery n5 = MustCompile("self::* = 100");
  const std::pair<const char*, bool> rows[] = {
      {"11", false}, {"12", false}, {"13", false}, {"14", true},
      {"21", false}, {"22", false}, {"23", false},
  };
  for (const auto& [cn, expected] : rows) {
    EvalContext ctx{X(cn), 1, 1};
    StatusOr<Value> v = Evaluate(n5, doc_, ctx);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->boolean(), expected) << "x" << cn;
  }
}

TEST_F(PaperExamplesTest, PaperErrataFigure5X24) {
  // Figure 5 prints "false" for x24, contradicting Figure 4 (rows
  // ⟨x24,8,8⟩ and ⟨x24,3,3⟩ are "true") and the semantics:
  // strval(x24) = "100", so self::* = 100 holds. We assert the
  // semantically correct value.
  xpath::CompiledQuery n5 = MustCompile("self::* = 100");
  EvalContext ctx{X("24"), 1, 1};
  StatusOr<Value> v = Evaluate(n5, doc_, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->boolean());
}

TEST_F(PaperExamplesTest, Figure5TableN7RestrictedToCs) {
  // N7 = last()*0.5, keyed by cs only: cs=8 → 4, cs=3 → 1.5.
  xpath::CompiledQuery n7 = MustCompile("last()*0.5");
  EvalContext c8{X("11"), 1, 8};
  EvalContext c3{X("12"), 1, 3};
  EXPECT_EQ(Evaluate(n7, doc_, c8)->number(), 4.0);
  EXPECT_EQ(Evaluate(n7, doc_, c3)->number(), 1.5);
}

TEST_F(PaperExamplesTest, Figure5TableN6PositionOnly) {
  // N6 = position(): depends on cp alone.
  xpath::CompiledQuery n6 = MustCompile("position()");
  for (uint32_t cp = 1; cp <= 8; ++cp) {
    EvalContext ctx{X("11"), cp, 8};
    EXPECT_EQ(Evaluate(n6, doc_, ctx)->number(), cp);
  }
}

TEST_F(PaperExamplesTest, Example4OutermostPaths) {
  // X = all nine elements reached by /descendant::*; Y = final result.
  EXPECT_EQ(Run("/descendant::*", "10", EngineKind::kMinContext),
            (std::vector<std::string>{"10", "11", "12", "13", "14", "21",
                                      "22", "23", "24"}));
}

TEST_F(PaperExamplesTest, Example5SingleContextProbe) {
  // "for ⟨cn,cp,cs⟩ = ⟨x23,7,8⟩ ... we get the overall value true ...
  //  hence x23 is added to X'".
  xpath::CompiledQuery pred = MustCompile(
      "position() > last()*0.5 or self::* = 100");
  EvalContext ctx{X("23"), 7, 8};
  EXPECT_TRUE(Evaluate(pred, doc_, ctx)->boolean());
}

TEST_F(PaperExamplesTest, Example9FinalResult) {
  // "the final result of the query Q is {x11, x12, x13, x14, x22}".
  const std::vector<std::string> expected = {"11", "12", "13", "14", "22"};
  for (EngineKind engine : ConformanceEngines()) {
    EXPECT_EQ(Run(kExample9, "10", engine), expected)
        << EngineKindToString(engine);
  }
}

TEST_F(PaperExamplesTest, Example9InnerPathRho) {
  // ρ ≡ preceding-sibling::*/preceding::* with "= 100" holds exactly for
  // {x23, x24} (the paper's table(N8)).
  const char* rho_holds = "descendant::*[preceding-sibling::*/preceding::* = 100]";
  EXPECT_EQ(Run(rho_holds, "10", EngineKind::kOptMinContext),
            (std::vector<std::string>{"23", "24"}));
}

TEST_F(PaperExamplesTest, Example9InitialYForRho) {
  // Y := {x14, x24}: the nodes whose strval equals 100.
  EXPECT_EQ(Run("descendant-or-self::*[self::* = 100]", "10",
                EngineKind::kOptMinContext),
            (std::vector<std::string>{"14", "24"}));
}

TEST_F(PaperExamplesTest, Example9BackwardSteps) {
  // following(x14 ∪ x24) = {x21, x22, x23, x24};
  NodeSet y({X("14"), X("24")});
  NodeSet f = EvalAxisInverse(doc_, Axis::kPreceding, y);
  // (preceding⁻¹ = following)
  NodeSet expected_f;
  for (const char* id : {"21", "22", "23", "24"}) {
    expected_f.PushBackOrdered(X(id));
  }
  // f also contains text children of x22..x24 — restrict to elements.
  NodeSet f_elems;
  for (xml::NodeId n : f) {
    if (doc_.IsElement(n)) f_elems.PushBackOrdered(n);
  }
  EXPECT_EQ(f_elems, expected_f);

  // following-sibling(·) of that = {x23, x24}.
  NodeSet fs = EvalAxisInverse(doc_, Axis::kPrecedingSibling, f_elems);
  NodeSet fs_elems;
  for (xml::NodeId n : fs) {
    if (doc_.IsElement(n)) fs_elems.PushBackOrdered(n);
  }
  EXPECT_EQ(fs_elems, NodeSet({X("23"), X("24")}));
}

TEST_F(PaperExamplesTest, PaperErrataExample9Positions) {
  // Example 9 computes the contexts ⟨x14,2,6⟩/⟨x23,5,6⟩ over the
  // unfiltered following::* list; Definition 2 and [18] §2.4 take
  // positions in the node-test-filtered list following::d (x14 is 1st of
  // 3 d-followers of x12, x23 the 2nd). Both readings satisfy
  // "position() != last()" here — the paper's final result is unchanged,
  // which this checks end-to-end (see EXPERIMENTS.md E7).
  xpath::CompiledQuery pos = MustCompile(
      "count(following::d[position() != last()])");
  EvalContext ctx{X("12"), 1, 1};
  // d-followers of x12: x14, x23, x24 → positions 1,2 pass, 3 = last fails.
  EXPECT_EQ(Evaluate(pos, doc_, ctx)->number(), 2.0);
}

TEST_F(PaperExamplesTest, ContextValueTableCellsStayQuadratic) {
  // "no context-value table contains more than |dom|² entries" (§2.4):
  // check the instrumented cell counts for the running example.
  xpath::CompiledQuery q = MustCompile(kRunningExample);
  EvalStats stats;
  EvalOptions options;
  options.engine = EngineKind::kMinContext;
  options.stats = &stats;
  ASSERT_TRUE(Evaluate(q, doc_, EvalContext{X("10"), 1, 1}, options).ok());
  const uint64_t d = doc_.size();
  // |Q| table slots, each at most |dom|² cells.
  EXPECT_LE(stats.cells_peak, d * d * q.tree().size());
  EXPECT_GT(stats.cells_allocated, 0u);
}

}  // namespace
}  // namespace xpe
