#ifndef XPE_TESTS_TEST_UTIL_H_
#define XPE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/xpe.h"

namespace xpe::test {

/// Compiles or fails the test with the compile error.
inline xpath::CompiledQuery MustCompile(
    std::string_view query, const xpath::CompileOptions& options = {}) {
  StatusOr<xpath::CompiledQuery> compiled = xpath::Compile(query, options);
  EXPECT_TRUE(compiled.ok()) << "query: " << query << "\n"
                             << compiled.status().ToString();
  if (!compiled.ok()) std::abort();
  return std::move(compiled).value();
}

/// Parses or fails the test with the parse error.
inline xml::Document MustParse(std::string_view text,
                               const xml::ParseOptions& options = {}) {
  StatusOr<xml::Document> doc = xml::Parse(text, options);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) std::abort();
  return std::move(doc).value();
}

/// Evaluates a node-set query and renders each result node as its "id"
/// attribute value when present (the paper's x10..x24 notation), or
/// "#<NodeId>" otherwise. Non-OK evaluations fail the test.
inline std::vector<std::string> EvalIds(
    const xpath::CompiledQuery& query, const xml::Document& doc,
    EngineKind engine = EngineKind::kOptMinContext,
    const EvalContext& ctx = {}) {
  EvalOptions options;
  options.engine = engine;
  StatusOr<NodeSet> result = EvaluateNodeSet(query, doc, ctx, options);
  EXPECT_TRUE(result.ok()) << "query: " << query.source() << " engine "
                           << EngineKindToString(engine) << "\n"
                           << result.status().ToString();
  if (!result.ok()) return {"<error>"};
  std::vector<std::string> ids;
  for (xml::NodeId n : *result) {
    auto id = doc.Attribute(n, "id");
    ids.push_back(id ? std::string(*id) : "#" + std::to_string(n));
  }
  return ids;
}

inline std::vector<std::string> EvalIds(
    std::string_view query, const xml::Document& doc,
    EngineKind engine = EngineKind::kOptMinContext,
    const EvalContext& ctx = {}) {
  return EvalIds(MustCompile(query), doc, engine, ctx);
}

/// Evaluates a query expected to produce a scalar; fails the test on
/// error.
inline Value EvalValue(std::string_view query, const xml::Document& doc,
                       EngineKind engine = EngineKind::kOptMinContext,
                       const EvalContext& ctx = {}) {
  xpath::CompiledQuery compiled = MustCompile(query);
  EvalOptions options;
  options.engine = engine;
  StatusOr<Value> result = Evaluate(compiled, doc, ctx, options);
  EXPECT_TRUE(result.ok()) << "query: " << query << "\n"
                           << result.status().ToString();
  if (!result.ok()) return Value();
  return std::move(result).value();
}

/// The engines every conformance test runs against.
inline std::vector<EngineKind> ConformanceEngines() {
  return {EngineKind::kNaive, EngineKind::kBottomUp, EngineKind::kTopDown,
          EngineKind::kMinContext, EngineKind::kOptMinContext};
}

/// Pretty parameter names for INSTANTIATE_TEST_SUITE_P over engines.
struct EngineName {
  template <typename T>
  std::string operator()(const testing::TestParamInfo<T>& info) const {
    std::string name = EngineKindToString(std::get<EngineKind>(info.param));
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    return name;
  }
};

}  // namespace xpe::test

#endif  // XPE_TESTS_TEST_UTIL_H_
