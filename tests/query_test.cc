// The xpe::Query facade and the early-terminating result modes.
//
// Three layers of coverage:
//  - facade semantics: every typed verb against hand-checked documents,
//    fluent options, value-semantic copies, the PlanCache bridge;
//  - the modes differential: First/Exists/Count/Limit must agree with
//    post-hoc reductions of the full result for every engine × index
//    on/off — the engines are allowed to short-circuit, never to answer
//    differently;
//  - the short-circuit proof: EvalStats::nodes_visited shows Exists()/
//    First() on Core XPath queries stopping after the first match where
//    full materialization walks the document (the acceptance criterion
//    no wall-clock measurement can pin down).

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::MustCompile;
using test::MustParse;

const char kDoc[] =
    "<lib><book year='1999'><title>a</title></book>"
    "<book year='2004'><title>b</title></book>"
    "<book year='2011'><title>c</title></book>"
    "<dvd year='2011'/></lib>";

Query MustCompileQuery(std::string_view text) {
  StatusOr<Query> q = Query::Compile(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  if (!q.ok()) std::abort();
  return std::move(q).value();
}

TEST(QueryTest, CompileErrorSurfaces) {
  StatusOr<Query> q = Query::Compile("//a[");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

TEST(QueryTest, TypedVerbsAgainstHandCheckedDocument) {
  xml::Document doc = MustParse(kDoc);
  Query books = MustCompileQuery("//book");

  ASSERT_TRUE(books.Nodes(doc).ok());
  const NodeSet all = *books.Nodes(doc);
  EXPECT_EQ(all.size(), 3u);

  EXPECT_EQ(*books.Count(doc), 3u);
  EXPECT_TRUE(*books.Exists(doc));
  ASSERT_TRUE(books.First(doc)->has_value());
  EXPECT_EQ(**books.First(doc), all.First());
  EXPECT_EQ(*books.Limit(doc, 2),
            NodeSet::FromSorted(
                std::span<const xml::NodeId>(all.ids()).first(2)));
  EXPECT_EQ(*books.StringOf(doc), "a");

  Query none = MustCompileQuery("//magazine");
  EXPECT_FALSE(*none.Exists(doc));
  EXPECT_EQ(*none.Count(doc), 0u);
  EXPECT_FALSE(none.First(doc)->has_value());
  EXPECT_EQ(*none.StringOf(doc), "");
  EXPECT_TRUE(none.Limit(doc, 5)->empty());
  EXPECT_EQ(none.Limit(doc, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryTest, EvalReturnsScalarValues) {
  xml::Document doc = MustParse(kDoc);
  Query q = MustCompileQuery("count(//book) + 1");
  ASSERT_TRUE(q.Eval(doc).ok());
  EXPECT_EQ(q.Eval(doc)->number(), 4.0);
  EXPECT_EQ(*q.StringOf(doc), "4");
}

TEST(QueryTest, ModesRejectNonNodeSetQueries) {
  xml::Document doc = MustParse(kDoc);
  Query q = MustCompileQuery("count(//book)");
  EXPECT_EQ(q.Exists(doc).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(q.Count(doc).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(q.First(doc).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(q.Nodes(doc).status().code(), StatusCode::kInvalidArgument);
  // StringOf and Eval are defined for every result type.
  EXPECT_EQ(*q.StringOf(doc), "3");
}

TEST(QueryTest, ForEachStreamsInDocumentOrderAndStopsOnFalse) {
  xml::Document doc = MustParse(kDoc);
  Query books = MustCompileQuery("//book");
  const NodeSet all = *books.Nodes(doc);

  std::vector<xml::NodeId> seen;
  ASSERT_TRUE(books
                  .ForEach(doc,
                           [&](xml::NodeId n) {
                             seen.push_back(n);
                             return true;
                           })
                  .ok());
  EXPECT_EQ(seen, all.ids());

  seen.clear();
  ASSERT_TRUE(books
                  .ForEach(doc,
                           [&](xml::NodeId n) {
                             seen.push_back(n);
                             return seen.size() < 2;
                           })
                  .ok());
  EXPECT_EQ(seen.size(), 2u);

  EXPECT_EQ(books.ForEach(doc, nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, FluentOptionsSelectEngineAndStats) {
  xml::Document doc = MustParse(kDoc);
  Query q = MustCompileQuery("//book[@year > 2000]");
  const NodeSet expected = *q.Nodes(doc);
  for (EngineKind engine : AllEngines()) {
    if (engine == EngineKind::kCoreXPath) continue;  // not Core XPath
    EvalStats stats;
    q.With(engine).WithStats(&stats);
    EXPECT_EQ(*q.Nodes(doc), expected) << EngineKindToString(engine);
    EXPECT_EQ(*q.Count(doc), expected.size()) << EngineKindToString(engine);
    q.WithStats(nullptr);  // the sink must not outlive this iteration
  }
  // Asking the Core XPath engine for a non-core query is an error the
  // facade passes through.
  EXPECT_FALSE(q.With(EngineKind::kCoreXPath).Nodes(doc).ok());
}

TEST(QueryTest, CopiesShareThePlanButNotTheSession) {
  xml::Document doc = MustParse(kDoc);
  Query a = MustCompileQuery("//book");
  Query b = a;
  EXPECT_EQ(&a.plan(), &b.plan());
  b.With(EngineKind::kMinContext);
  EXPECT_EQ(*a.Count(doc), 3u);
  EXPECT_EQ(*b.Count(doc), 3u);
  Query c = MustCompileQuery("//dvd");
  c = a;
  EXPECT_EQ(&c.plan(), &a.plan());
  EXPECT_EQ(*c.Count(doc), 3u);
}

TEST(QueryTest, ExplainAndIntrospection) {
  Query q = MustCompileQuery("//book");
  EXPECT_EQ(q.source(), "//book");
  EXPECT_EQ(q.result_type(), xpath::ValueType::kNodeSet);
  EXPECT_NE(q.Explain().find("CoreXPath"), std::string::npos);
}

TEST(QueryTest, PlanCacheBridgeSharesPlans) {
  xml::Document doc = MustParse(kDoc);
  batch::PlanCache cache(8);
  bool hit = false;
  StatusOr<Query> q1 = cache.GetOrCompileQuery("//book", &hit);
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(hit);
  StatusOr<Query> q2 = cache.GetOrCompileQuery("//book", &hit);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(&q1->plan(), &q2->plan());
  EXPECT_EQ(*q1->Count(doc), 3u);
  EXPECT_TRUE(*q2->Exists(doc));
}

// --- satellite: Value's typed accessors CHECK-fail with type names ---------

#if GTEST_HAS_DEATH_TEST
TEST(ValueTypeCheckDeathTest, AccessorNamesActualAndRequestedType) {
  EXPECT_DEATH(Value::Number(1.0).node_set(),
               "node_set\\(\\) called on a number Value");
  EXPECT_DEATH(Value::Nodes(NodeSet()).boolean(),
               "boolean\\(\\) called on a node-set Value");
  EXPECT_DEATH(Value::Boolean(true).string(),
               "string\\(\\) called on a boolean Value");
  EXPECT_DEATH(Value::String("x").number(),
               "number\\(\\) called on a string Value");
}
#endif

// --- satellite: EvalOptions::budget is enforced by kCoreXPath --------------

TEST(CoreXPathBudgetTest, TinyBudgetIsExhausted) {
  xml::Document doc = xml::MakeRandomDocument(200, {"a", "b"}, /*seed=*/7);
  for (EngineKind engine :
       {EngineKind::kCoreXPath, EngineKind::kOptMinContext}) {
    EvalOptions options;
    options.engine = engine;
    options.budget = 3;  // //a/b charges the whole-document frontier
    StatusOr<Value> v =
        Evaluate(MustCompile("//a/b"), doc, EvalContext{}, options);
    ASSERT_FALSE(v.ok()) << EngineKindToString(engine);
    EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted)
        << EngineKindToString(engine);
  }
}

TEST(CoreXPathBudgetTest, AdequateBudgetSucceedsAndCharges) {
  xml::Document doc = xml::MakeRandomDocument(200, {"a", "b"}, /*seed=*/7);
  EvalStats stats;
  EvalOptions options;
  options.engine = EngineKind::kCoreXPath;
  options.budget = 1'000'000;
  options.stats = &stats;
  ASSERT_TRUE(
      Evaluate(MustCompile("//a[b]"), doc, EvalContext{}, options).ok());
  // The linear engine now reports its work in the budget's unit.
  EXPECT_GT(stats.contexts_evaluated, 0u);
}

// --- the modes differential ------------------------------------------------

/// Node-set query corpus for the mode agreement property: core and
/// non-core shapes, positional predicates, unions, filters, reverse
/// axes, attributes — everything the limit push-down must not break.
const char* kModeCorpus[] = {
    "//a",
    "//b",
    "//a/b",
    "//a//b",
    "//missing",
    "/descendant::*",
    "//a[b]",
    "//a[not(b)]",
    "//a[b and c]",
    "//b[1]",
    "//b[last()]",
    "//a[position() mod 2 = 0]",
    "//b/ancestor::a",
    "//c/preceding-sibling::*",
    "//b/following::c",
    "//*[@id]",
    "(//b)[2]",
    "//a | //c",
    "(//a | //b)[3]",
    "//a[count(b) > 1]/b",
    "//a[.//c]//b",
};

class ModeDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ModeDifferentialTest, ModesAgreeWithFullReductions) {
  xml::Document doc =
      xml::MakeRandomDocument(40, {"a", "b", "c"}, GetParam());
  for (const char* query : kModeCorpus) {
    xpath::CompiledQuery compiled = MustCompile(query);
    std::vector<EngineKind> engines = {
        EngineKind::kNaive,         EngineKind::kBottomUp,
        EngineKind::kTopDown,       EngineKind::kMinContext,
        EngineKind::kOptMinContext};
    if (compiled.fragment() == xpath::Fragment::kCoreXPath) {
      engines.push_back(EngineKind::kCoreXPath);
    }
    for (EngineKind engine : engines) {
      for (bool use_index : {false, true}) {
        EvalOptions opts;
        opts.engine = engine;
        opts.use_index = use_index;
        const std::string label =
            std::string(query) + " on " + EngineKindToString(engine) +
            (use_index ? " +index" : " -index") +
            " seed " + std::to_string(GetParam());

        StatusOr<NodeSet> full = EvaluateNodeSet(compiled, doc, {}, opts);
        ASSERT_TRUE(full.ok()) << label << ": " << full.status().ToString();

        auto eval_mode = [&](ResultMode mode, uint64_t limit) {
          EvalOptions mode_opts = opts;
          mode_opts.result.mode = mode;
          mode_opts.result.limit = limit;
          StatusOr<Value> v = Evaluate(compiled, doc, {}, mode_opts);
          EXPECT_TRUE(v.ok()) << label << ": " << v.status().ToString();
          return std::move(v).value();
        };

        EXPECT_EQ(eval_mode(ResultMode::kExists, 0).boolean(), !full->empty())
            << label;
        EXPECT_EQ(eval_mode(ResultMode::kCount, 0).number(),
                  static_cast<double>(full->size()))
            << label;
        const NodeSet first = eval_mode(ResultMode::kFirst, 0).node_set();
        if (full->empty()) {
          EXPECT_TRUE(first.empty()) << label;
        } else {
          ASSERT_EQ(first.size(), 1u) << label;
          EXPECT_EQ(first.First(), full->First()) << label;
        }
        {
          // limit == 0 is rejected (a forgotten ResultSpec::limit), not
          // answered with an empty OK set.
          EvalOptions zero_opts = opts;
          zero_opts.result.mode = ResultMode::kLimit;
          EXPECT_EQ(Evaluate(compiled, doc, {}, zero_opts).status().code(),
                    StatusCode::kInvalidArgument)
              << label;
        }
        for (uint64_t limit : {1u, 2u, 1000u}) {
          const NodeSet prefix =
              eval_mode(ResultMode::kLimit, limit).node_set();
          const size_t want = std::min<size_t>(limit, full->size());
          EXPECT_EQ(prefix,
                    NodeSet::FromSorted(
                        std::span<const xml::NodeId>(full->ids()).first(want)))
              << label << " limit " << limit;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeDifferentialTest,
                         testing::Range<uint64_t>(1, 6));

// --- the short-circuit proof -----------------------------------------------

/// Labels with one "x" needle per 99 fillers: ~1% selectivity.
std::vector<std::string> SparseLabels() {
  std::vector<std::string> labels = {"x"};
  static const char* kFillers[] = {"a", "b", "c", "d", "e"};
  for (int i = 0; i < 99; ++i) labels.push_back(kFillers[i % 5]);
  return labels;
}

TEST(EarlyTerminationTest, ExistsAndFirstStopAfterTheFirstMatch) {
  xml::Document doc =
      xml::MakeRandomDocument(20'000, SparseLabels(), /*seed=*/4242);
  doc.WarmCaches();  // keep the lazy index build out of the counters
  // The compile-time optimizer fuses //x into /descendant::x for every
  // result mode, so the whole-document-scan yardstick the probes are
  // measured against needs the optimizer off.
  xpath::CompileOptions unoptimized;
  unoptimized.optimize = false;
  for (EngineKind engine :
       {EngineKind::kCoreXPath, EngineKind::kOptMinContext}) {
    Query q = MustCompileQuery("//x");
    q.With(engine);
    StatusOr<Query> unopt_or = Query::Compile("//x", unoptimized);
    ASSERT_TRUE(unopt_or.ok());
    Query unopt = std::move(unopt_or).value();
    unopt.With(engine);

    EvalStats unopt_full_stats;
    unopt.WithStats(&unopt_full_stats);
    const NodeSet full = *unopt.Nodes(doc);
    ASSERT_FALSE(full.empty());

    EvalStats full_stats;
    q.WithStats(&full_stats);
    EXPECT_EQ(*q.Nodes(doc), full);

    EvalStats exists_stats;
    q.WithStats(&exists_stats);
    EXPECT_TRUE(*q.Exists(doc));

    EvalStats first_stats;
    q.WithStats(&first_stats);
    EXPECT_EQ(**q.First(doc), full.First());

    // The unoptimized normal form materializes the whole document for
    // the descendant-or-self hop (>= |D| nodes)...
    EXPECT_GE(unopt_full_stats.nodes_visited,
              static_cast<uint64_t>(doc.size()))
        << EngineKindToString(engine);
    // ...the optimized *full* mode now runs the fused plan — strictly
    // fewer visited nodes than the unfused scan, nowhere near |D|
    // (ISSUE 5: the fusion is no longer gated to the limited modes)...
    EXPECT_LT(full_stats.nodes_visited, unopt_full_stats.nodes_visited)
        << EngineKindToString(engine);
    EXPECT_LT(full_stats.nodes_visited, static_cast<uint64_t>(doc.size()) / 10)
        << EngineKindToString(engine);
    // ...and the probe modes terminate after the first match.
    EXPECT_LT(exists_stats.nodes_visited * 100, unopt_full_stats.nodes_visited)
        << EngineKindToString(engine);
    EXPECT_LT(first_stats.nodes_visited * 100, unopt_full_stats.nodes_visited)
        << EngineKindToString(engine);
  }
}

TEST(EarlyTerminationTest, LimitVisitsProportionallyFewerNodes) {
  xml::Document doc =
      xml::MakeRandomDocument(20'000, SparseLabels(), /*seed=*/99);
  doc.WarmCaches();
  Query q = MustCompileQuery("//x");
  q.With(EngineKind::kCoreXPath);

  EvalStats full_stats;
  q.WithStats(&full_stats);
  const NodeSet full = *q.Nodes(doc);
  ASSERT_GT(full.size(), 10u);

  EvalStats limit_stats;
  q.WithStats(&limit_stats);
  const NodeSet prefix = *q.Limit(doc, 5);
  EXPECT_EQ(prefix.size(), 5u);
  EXPECT_LT(limit_stats.nodes_visited * 10, full_stats.nodes_visited);
}

// --- batch items carry per-item result modes -------------------------------

TEST(BatchModesTest, PerItemModesMatchSequentialVerbs) {
  xml::Document doc =
      xml::MakeRandomDocument(500, {"a", "b", "c"}, /*seed=*/3);
  Query nodes = MustCompileQuery("//a/b");
  const NodeSet full = *nodes.Nodes(doc);
  ASSERT_FALSE(full.empty());  // First() below needs a non-empty corpus

  batch::BatchEvaluator evaluator({.workers = 4});
  std::vector<batch::BatchItem> items;
  items.push_back({"//a/b", &doc, {}, {}});
  items.push_back({"//a/b", &doc, {}, {.mode = ResultMode::kExists}});
  items.push_back({"//a/b", &doc, {}, {.mode = ResultMode::kCount}});
  items.push_back({"//a/b", &doc, {}, {.mode = ResultMode::kFirst}});
  items.push_back(
      {"//a/b", &doc, {}, {.mode = ResultMode::kLimit, .limit = 3}});
  std::vector<batch::BatchResult> results = evaluator.EvaluateAll(items);
  ASSERT_EQ(results.size(), 5u);
  for (const batch::BatchResult& r : results) {
    ASSERT_TRUE(r.value.ok()) << r.value.status().ToString();
  }
  EXPECT_EQ(results[0].value->node_set(), full);
  EXPECT_EQ(results[1].value->boolean(), !full.empty());
  EXPECT_EQ(results[2].value->number(), static_cast<double>(full.size()));
  EXPECT_EQ(results[3].value->node_set().First(), full.First());
  EXPECT_EQ(results[4].value->node_set(),
            NodeSet::FromSorted(std::span<const xml::NodeId>(full.ids())
                                    .first(std::min<size_t>(3, full.size()))));
}

}  // namespace
}  // namespace xpe
