// Robustness and property tests: hostile inputs must yield Status
// errors (never crashes or hangs), round-trips must be lossless, and the
// normalizer must be idempotent. Complements the per-module unit suites.

#include <gtest/gtest.h>

#include <random>

#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::MustCompile;
using test::MustParse;

// --- Hostile query inputs -----------------------------------------------------

TEST(QueryRobustnessTest, DeepParenthesesAreRejectedNotCrashed) {
  std::string q(2000, '(');
  q += "1";
  q += std::string(2000, ')');
  StatusOr<xpath::CompiledQuery> c = xpath::Compile(q);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kParseError);
}

TEST(QueryRobustnessTest, DeepUnaryMinusIsRejected) {
  std::string q(5000, '-');
  q += "1";
  StatusOr<xpath::CompiledQuery> c = xpath::Compile(q);
  ASSERT_FALSE(c.ok());
}

TEST(QueryRobustnessTest, DeepPredicateNestingWithinLimitWorks) {
  // 100 nested predicates are fine (the limit only kicks in far beyond
  // realistic queries).
  std::string q = "a";
  for (int i = 0; i < 100; ++i) q = "a[" + q + "]";
  EXPECT_TRUE(xpath::Compile(q).ok());
}

TEST(QueryRobustnessTest, LongFlatPathsAreFine) {
  // Path steps are parsed iteratively: no depth limit applies.
  std::string q = "a";
  for (int i = 0; i < 3000; ++i) q += "/a";
  EXPECT_TRUE(xpath::Compile(q).ok());
}

TEST(QueryRobustnessTest, RandomTokenSoupNeverCrashes) {
  // Seeded pseudo-random strings over the XPath alphabet: every outcome
  // must be a clean Status (usually a parse error), never UB.
  const char* pieces[] = {"/",  "//", "[",  "]",    "(",      ")",
                          "::", "..", "@",  "*",    "and",    "or",
                          "a",  "1",  "'s'", "$v",  "count",  ",",
                          "|",  "=",  "!=", "<",    "child",  "-",
                          "position", "text", " ", "100",     "."};
  std::mt19937_64 rng(20260610);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string q;
    const int len = 1 + static_cast<int>(rng() % 12);
    for (int i = 0; i < len; ++i) {
      q += pieces[rng() % std::size(pieces)];
    }
    StatusOr<xpath::CompiledQuery> c = xpath::Compile(q);
    if (c.ok()) ++accepted;  // some soups are valid queries — fine
  }
  EXPECT_GT(accepted, 0);  // sanity: the generator can produce valid ones
}

TEST(QueryRobustnessTest, ValidRandomQueriesEvaluateEverywhere) {
  // Any query that compiles must evaluate cleanly (or fail with a clean
  // Status) on every engine.
  xml::Document doc = xml::MakeRandomDocument(20, {"a", "b"}, 99);
  const char* pieces[] = {"//a", "/a",  "a",      "[1]",        "[last()]",
                          "/..", "/.",  "[a]",    "[. = 100]",  "/b",
                          "[position() != 2]",    "[not(b)]",   "/@id"};
  std::mt19937_64 rng(42);
  int evaluated = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string q = "a";
    const int len = static_cast<int>(rng() % 4);
    for (int i = 0; i < len; ++i) q += pieces[rng() % std::size(pieces)];
    StatusOr<xpath::CompiledQuery> c = xpath::Compile(q);
    if (!c.ok()) continue;
    for (EngineKind engine : test::ConformanceEngines()) {
      EvalOptions options;
      options.engine = engine;
      options.budget = 10'000'000;
      StatusOr<Value> v = Evaluate(*c, doc, EvalContext{}, options);
      EXPECT_TRUE(v.ok() ||
                  v.status().code() == StatusCode::kResourceExhausted)
          << q << " on " << EngineKindToString(engine) << ": "
          << v.status().ToString();
    }
    ++evaluated;
  }
  EXPECT_GT(evaluated, 50);
}

// --- Hostile XML inputs ---------------------------------------------------------

TEST(XmlRobustnessTest, DeepNestingIsBounded) {
  std::string text;
  for (int i = 0; i < 10000; ++i) text += "<d>";
  StatusOr<xml::Document> doc = xml::Parse(text);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
}

TEST(XmlRobustnessTest, CustomDepthLimit) {
  xml::ParseOptions options;
  options.max_depth = 3;
  EXPECT_TRUE(xml::Parse("<a><b><c/></b></a>", options).ok());
  StatusOr<xml::Document> deep =
      xml::Parse("<a><b><c><d/></c></b></a>", options);
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kResourceExhausted);
}

TEST(XmlRobustnessTest, MaxNodesLimit) {
  xml::ParseOptions options;
  options.max_nodes = 5;
  StatusOr<xml::Document> doc =
      xml::Parse("<a><b/><c/><d/><e/><f/></a>", options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
}

TEST(XmlRobustnessTest, RandomByteNoiseNeverCrashes) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = "<a>";
    const int len = static_cast<int>(rng() % 64);
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>(1 + rng() % 255);
    }
    text += "</a>";
    // Must terminate with either a document or an error.
    (void)xml::Parse(text);
  }
}

TEST(XmlRobustnessTest, TruncationsOfValidDocumentNeverCrash) {
  const std::string full =
      "<?xml version=\"1.0\"?><a id=\"1\"><b x='&lt;'>t<!--c--><![CDATA[d]]>"
      "<?p i?></b></a>";
  for (size_t cut = 0; cut < full.size(); ++cut) {
    (void)xml::Parse(full.substr(0, cut));  // any Status, no crash
  }
}

// --- Round-trip / idempotency properties ----------------------------------------

class RoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripTest, SerializeParseIsIdentity) {
  xml::Document doc =
      xml::MakeRandomDocument(60, {"a", "b", "c"}, GetParam());
  const std::string text = xml::Serialize(doc);
  xml::Document again = MustParse(text);
  EXPECT_EQ(again.size(), doc.size());
  EXPECT_EQ(again.DebugDump(), doc.DebugDump());
  EXPECT_EQ(xml::Serialize(again), text);
}

TEST_P(RoundTripTest, QueriesAgreeAfterRoundTrip) {
  xml::Document doc =
      xml::MakeRandomDocument(40, {"a", "b", "c"}, GetParam() * 13);
  xml::Document again = MustParse(xml::Serialize(doc));
  for (const char* q : {"//a[b]", "//b[position() = last()]", "count(//c)",
                        "//a[. = 100]", "//*[@id]"}) {
    xpath::CompiledQuery compiled = MustCompile(q);
    StatusOr<Value> v1 = Evaluate(compiled, doc, EvalContext{});
    StatusOr<Value> v2 = Evaluate(compiled, again, EvalContext{});
    ASSERT_TRUE(v1.ok() && v2.ok());
    EXPECT_TRUE(v1->StructurallyEquals(*v2)) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         testing::Values(3, 7, 11, 19, 29));

TEST(NormalizeIdempotencyTest, CanonicalFormIsStable) {
  // Compiling a query's canonical rendering must reproduce the same
  // canonical rendering (the normalizer is idempotent).
  const char* queries[] = {
      "//a[1]",
      "a[b and c or d]",
      "id(//ref)/x",
      "string() = 'x'",
      "//a[position() > last()*0.5 or self::* = 100]",
      "sum(//p) div count(//p)",
      "(//a | //b)[2]",
      "..//a[@id='k']",
      "lang('en')",
      "-(-2)",
  };
  for (const char* q : queries) {
    const std::string once = MustCompile(q).tree().ToString();
    const std::string twice = MustCompile(once).tree().ToString();
    EXPECT_EQ(once, twice) << q;
  }
}

TEST(EvalDeterminismTest, RepeatedEvaluationIsStable) {
  // Lazy caches (NumberValue, id-axis) must not change results.
  xml::Document doc = xml::MakeBibliographyDocument(12);
  xpath::CompiledQuery q =
      MustCompile("id(//book/cites)/title[contains(., 'a')]");
  StatusOr<Value> first = Evaluate(q, doc, EvalContext{});
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    StatusOr<Value> next = Evaluate(q, doc, EvalContext{});
    ASSERT_TRUE(next.ok());
    EXPECT_TRUE(next->StructurallyEquals(*first));
  }
}

// --- Budget coverage on every engine --------------------------------------------

TEST(BudgetCoverageTest, EveryEngineHonoursTinyBudgets) {
  xml::Document doc = xml::MakeGrownPaperDocument(4);
  xpath::CompiledQuery q = MustCompile(
      "/descendant::*/descendant::*[position() > last()*0.5 or "
      "self::* = 100]");
  for (EngineKind engine :
       {EngineKind::kNaive, EngineKind::kBottomUp, EngineKind::kTopDown,
        EngineKind::kMinContext, EngineKind::kOptMinContext}) {
    EvalOptions options;
    options.engine = engine;
    options.budget = 3;
    StatusOr<Value> v = Evaluate(q, doc, EvalContext{}, options);
    ASSERT_FALSE(v.ok()) << EngineKindToString(engine);
    EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted)
        << EngineKindToString(engine);
  }
}

}  // namespace
}  // namespace xpe
