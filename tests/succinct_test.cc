#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/index/document_index.h"
#include "src/succinct/bitvector.h"
#include "src/succinct/bp_tree.h"
#include "src/succinct/ef_postings.h"
#include "src/succinct/succinct_index.h"
#include "src/xml/document.h"
#include "src/xml/generator.h"
#include "src/xml/parser.h"

namespace xpe {
namespace {

using succinct::BitVector;
using succinct::BpTree;
using succinct::EliasFanoList;
using xml::Document;
using xml::NodeId;

// --- BitVector rank/select vs brute force ---------------------------------

/// Patterns exercising the superblock machinery: empty, all-zero,
/// all-one, sparse, dense, and sizes straddling the 512-bit superblock
/// and the 512-one select-sample boundaries.
std::vector<bool> RandomBits(size_t n, double density, uint32_t seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution bit(density);
  std::vector<bool> bits(n);
  for (size_t i = 0; i < n; ++i) bits[i] = bit(rng);
  return bits;
}

void CheckRankSelect(const std::vector<bool>& bits) {
  BitVector bv(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bv.Set(i);
  }
  bv.Finish();
  size_t ones = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(bv.Rank1(i), ones) << "Rank1(" << i << ")";
    ASSERT_EQ(bv.Get(i), bits[i]) << "Get(" << i << ")";
    if (bits[i]) {
      ASSERT_EQ(bv.Select1(ones), i) << "Select1(" << ones << ")";
      ++ones;
    }
  }
  ASSERT_EQ(bv.Rank1(bits.size()), ones);
  ASSERT_EQ(bv.ones(), ones);
}

TEST(BitVectorTest, RankSelectMatchesBruteForce) {
  CheckRankSelect({});
  CheckRankSelect({false});
  CheckRankSelect({true});
  CheckRankSelect(std::vector<bool>(100, false));
  CheckRankSelect(std::vector<bool>(100, true));
  // Straddle the 512-bit superblock boundary at every alignment.
  for (size_t n : {63, 64, 65, 511, 512, 513, 1024, 1500}) {
    CheckRankSelect(RandomBits(n, 0.5, static_cast<uint32_t>(n)));
  }
}

TEST(BitVectorTest, SparseAndDenseDensities) {
  // >512 ones forces multiple select samples; 0.02 keeps samples rare.
  CheckRankSelect(RandomBits(40000, 0.02, 7));
  CheckRankSelect(RandomBits(4000, 0.97, 8));
}

TEST(BitVectorTest, AllOnesAcrossManySuperblocks) {
  CheckRankSelect(std::vector<bool>(3000, true));
}

// --- Elias-Fano postings vs the plain sorted vector -----------------------

std::vector<NodeId> RandomSorted(size_t n, NodeId universe, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<NodeId> dist(0, universe - 1);
  std::vector<NodeId> v(n);
  for (auto& x : v) x = dist(rng);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST(EliasFanoTest, GetRoundTrip) {
  for (uint32_t seed : {1u, 2u, 3u}) {
    const std::vector<NodeId> v = RandomSorted(2000, 1 << 20, seed);
    const EliasFanoList ef(v, 1 << 20);
    ASSERT_EQ(ef.size(), v.size());
    for (size_t k = 0; k < v.size(); ++k) {
      ASSERT_EQ(ef.Get(k), v[k]) << "k=" << k;
    }
  }
}

TEST(EliasFanoTest, EdgeShapes) {
  // Empty, singleton, duplicates-of-universe-1 clusters, and dense
  // (l == 0) lists.
  const EliasFanoList empty(std::vector<NodeId>{}, 100);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.CountInRange(0, 100), 0u);
  const EliasFanoList one(std::vector<NodeId>{42}, 100);
  EXPECT_EQ(one.Get(0), 42u);
  std::vector<NodeId> dense(100);
  for (NodeId i = 0; i < 100; ++i) dense[i] = i;
  const EliasFanoList ef(dense, 100);
  for (size_t k = 0; k < dense.size(); ++k) ASSERT_EQ(ef.Get(k), k);
}

TEST(EliasFanoTest, LowerBoundMatchesStd) {
  const std::vector<NodeId> v = RandomSorted(1500, 1 << 16, 11);
  const EliasFanoList ef(v, 1 << 16);
  for (NodeId q = 0; q < (1 << 16); q += 37) {
    const size_t expect = static_cast<size_t>(
        std::lower_bound(v.begin(), v.end(), q) - v.begin());
    ASSERT_EQ(ef.LowerBound(q), expect) << "q=" << q;
  }
}

TEST(EliasFanoTest, CursorRoundTrip) {
  const std::vector<NodeId> v = RandomSorted(3000, 1 << 18, 13);
  const EliasFanoList ef(v, 1 << 18);
  // Sequential walk.
  EliasFanoList::Cursor c(&ef, 0);
  for (size_t k = 0; k < v.size(); ++k) {
    ASSERT_FALSE(c.AtEnd());
    ASSERT_EQ(c.Value(), v[k]);
    c.Next();
  }
  EXPECT_TRUE(c.AtEnd());
  // NextAtLeast from every third element.
  std::mt19937 rng(17);
  for (int i = 0; i < 200; ++i) {
    const NodeId q = std::uniform_int_distribution<NodeId>(0, 1 << 18)(rng);
    EliasFanoList::Cursor seek(&ef, 0);
    seek.NextAtLeast(q);
    const auto it = std::lower_bound(v.begin(), v.end(), q);
    if (it == v.end()) {
      EXPECT_TRUE(seek.AtEnd()) << "q=" << q;
    } else {
      ASSERT_FALSE(seek.AtEnd()) << "q=" << q;
      EXPECT_EQ(seek.Value(), *it) << "q=" << q;
    }
  }
}

TEST(EliasFanoTest, DecodeMatchesSlice) {
  const std::vector<NodeId> v = RandomSorted(2500, 1 << 17, 19);
  const EliasFanoList ef(v, 1 << 17);
  std::mt19937 rng(23);
  for (int i = 0; i < 100; ++i) {
    size_t a = rng() % (v.size() + 1);
    size_t b = rng() % (v.size() + 1);
    if (a > b) std::swap(a, b);
    std::vector<NodeId> out(b - a);
    ef.Decode(a, b, out.data());
    EXPECT_TRUE(std::equal(out.begin(), out.end(), v.begin() + a));
  }
}

TEST(EliasFanoTest, RandomizedCountInRangeVsLinear) {
  for (uint32_t seed : {29u, 31u, 37u}) {
    const std::vector<NodeId> v = RandomSorted(1200, 1 << 15, seed);
    const EliasFanoList ef(v, 1 << 15);
    std::mt19937 rng(seed * 100);
    for (int i = 0; i < 300; ++i) {
      NodeId lo = rng() % (1 << 15);
      NodeId hi = rng() % (1 << 15);
      if (lo > hi) std::swap(lo, hi);
      size_t linear = 0;
      for (NodeId x : v) {
        if (x >= lo && x < hi) ++linear;
      }
      ASSERT_EQ(ef.CountInRange(lo, hi), linear)
          << "lo=" << lo << " hi=" << hi;
    }
  }
}

// --- Balanced-parentheses tree vs the flat arrays -------------------------

Document ParseOrDie(const std::string& xml) {
  auto doc = xml::Parse(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().message();
  return std::move(doc).value();
}

void CheckBpAgainstFlat(const Document& doc) {
  const BpTree tree(doc);
  ASSERT_EQ(tree.size(), doc.size());
  for (NodeId id = 0; id < doc.size(); ++id) {
    ASSERT_EQ(tree.SubtreeEnd(id), doc.subtree_end(id)) << "id=" << id;
    ASSERT_EQ(tree.Parent(id), doc.parent(id)) << "id=" << id;
    ASSERT_EQ(tree.Depth(id), doc.index().depth(id)) << "id=" << id;
  }
  // IsAncestor against the interval definition, on a sample.
  std::mt19937 rng(41);
  for (int i = 0; i < 2000; ++i) {
    const NodeId a = rng() % doc.size();
    const NodeId b = rng() % doc.size();
    const bool expect = a < b && b < doc.subtree_end(a);
    ASSERT_EQ(tree.IsAncestor(a, b), expect) << "a=" << a << " b=" << b;
  }
}

TEST(BpTreeTest, SmallDocuments) {
  CheckBpAgainstFlat(ParseOrDie("<a/>"));
  CheckBpAgainstFlat(ParseOrDie("<a><b/><c/></a>"));
  CheckBpAgainstFlat(
      ParseOrDie("<a x='1' y='2'><b z='3'>t<c/></b><!--c--><d/></a>"));
}

TEST(BpTreeTest, GeneratedDocumentMatchesFlatArrays) {
  // Big enough that subtrees straddle 64-bit BP blocks and the min
  // segment tree has real depth.
  CheckBpAgainstFlat(
      xml::MakeRandomDocument(20000, {"a", "b", "c", "x", "y"}, 43));
}

TEST(BpTreeTest, DeepChain) {
  // A path-shaped document: FindClose/Enclose excursions span many
  // blocks in one direction.
  std::string xml;
  const int depth = 800;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  CheckBpAgainstFlat(ParseOrDie(xml));
}

// --- SuccinctDocumentIndex: postings parity with the flat index -----------

TEST(SuccinctIndexTest, PostingsMatchFlatIndex) {
  const Document doc =
      xml::MakeRandomDocument(8000, {"a", "b", "c", "x", "y"}, 47);
  const auto& flat = doc.index();
  const auto& dense = doc.succinct_index();
  for (uint32_t name = 0; name < doc.name_count(); ++name) {
    const std::vector<NodeId>& fe = flat.ElementsNamed(name);
    const EliasFanoList& de = dense.ElementsNamed(name);
    ASSERT_EQ(de.size(), fe.size()) << "name=" << name;
    for (size_t k = 0; k < fe.size(); ++k) ASSERT_EQ(de.Get(k), fe[k]);
    const std::vector<NodeId>& fa = flat.AttributesNamed(name);
    const EliasFanoList& da = dense.AttributesNamed(name);
    ASSERT_EQ(da.size(), fa.size()) << "name=" << name;
    for (size_t k = 0; k < fa.size(); ++k) ASSERT_EQ(da.Get(k), fa[k]);
  }
  ASSERT_EQ(dense.all_elements().size(), flat.all_elements().size());
  ASSERT_EQ(dense.all_attributes().size(), flat.all_attributes().size());
}

TEST(SuccinctIndexTest, UsesLessMemoryThanFlat) {
  const Document doc =
      xml::MakeRandomDocument(30000, {"a", "b", "c", "x", "y"}, 53);
  EXPECT_LT(doc.succinct_index().MemoryUsageBytes(),
            doc.index().MemoryUsageBytes());
}

}  // namespace
}  // namespace xpe
