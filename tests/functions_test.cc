// Behavioural tests of the effective semantics function F (Figure 1 plus
// the string/number library of [18]), exercised through full query
// evaluation so every conversion path in the engine is covered too.

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_util.h"

namespace xpe {
namespace {

using test::EvalValue;
using test::MustParse;

class FunctionsTest : public testing::Test {
 protected:
  FunctionsTest()
      : doc_(MustParse(
            "<r><a>1</a><a>2</a><a>3</a>"
            "<s>hello world</s><e/>"
            "<n> 42 </n><neg>-7.5</neg><bad>x1</bad>"
            "<w>  a  b  </w>"
            "<k id=\"k1\">first</k><k id=\"k2\">second</k>"
            "<ref>k2 k1</ref></r>")) {}

  double Num(std::string_view q) {
    Value v = EvalValue(q, doc_);
    EXPECT_EQ(v.type(), ValueType::kNumber) << q;
    return v.number();
  }
  std::string Str(std::string_view q) {
    Value v = EvalValue(q, doc_);
    EXPECT_EQ(v.type(), ValueType::kString) << q;
    return v.string();
  }
  bool Bool(std::string_view q) {
    Value v = EvalValue(q, doc_);
    EXPECT_EQ(v.type(), ValueType::kBoolean) << q;
    return v.boolean();
  }

  xml::Document doc_;
};

// --- Node-set functions -----------------------------------------------------

TEST_F(FunctionsTest, CountAndSum) {
  EXPECT_EQ(Num("count(//a)"), 3);
  EXPECT_EQ(Num("count(//nothing)"), 0);
  EXPECT_EQ(Num("sum(//a)"), 6);
  EXPECT_EQ(Num("sum(//nothing)"), 0);        // empty sum
  EXPECT_TRUE(std::isnan(Num("sum(//e)")));   // strval "" → NaN
  EXPECT_TRUE(std::isnan(Num("sum(//s)")));   // "hello world" → NaN
}

TEST_F(FunctionsTest, IdFunction) {
  EXPECT_EQ(Num("count(id('k1'))"), 1);
  EXPECT_EQ(Num("count(id('k1 k2'))"), 2);
  EXPECT_EQ(Num("count(id('missing'))"), 0);
  // id(nset): the §4 id-axis — uses each node's string-value as keys.
  EXPECT_EQ(Num("count(id(//ref))"), 2);
  EXPECT_EQ(Str("string(id(//ref))"), "first");  // doc order: k1 first
}

TEST_F(FunctionsTest, NameFunctions) {
  EXPECT_EQ(Str("name(//s)"), "s");
  EXPECT_EQ(Str("local-name(//s)"), "s");
  EXPECT_EQ(Str("name(//nothing)"), "");
  EXPECT_EQ(Str("name(/)"), "");  // root has no name
}

// --- String functions --------------------------------------------------------

TEST_F(FunctionsTest, StringConversion) {
  EXPECT_EQ(Str("string(//a)"), "1");          // first node in doc order
  EXPECT_EQ(Str("string(//nothing)"), "");
  EXPECT_EQ(Str("string(12.5)"), "12.5");
  EXPECT_EQ(Str("string(true())"), "true");
  EXPECT_EQ(Str("string(false())"), "false");
  EXPECT_EQ(Str("string(1 div 0)"), "Infinity");
  EXPECT_EQ(Str("string(0 div 0)"), "NaN");
}

TEST_F(FunctionsTest, ConcatAndFriends) {
  EXPECT_EQ(Str("concat('a', 'b', 'c', 'd')"), "abcd");
  EXPECT_EQ(Str("concat(//s, '!')"), "hello world!");
  EXPECT_TRUE(Bool("starts-with(//s, 'hello')"));
  EXPECT_FALSE(Bool("starts-with(//s, 'world')"));
  EXPECT_TRUE(Bool("contains(//s, 'lo wo')"));
  EXPECT_FALSE(Bool("contains(//s, 'xyz')"));
}

TEST_F(FunctionsTest, SubstringFamily) {
  EXPECT_EQ(Str("substring-before(//s, ' ')"), "hello");
  EXPECT_EQ(Str("substring-after(//s, ' ')"), "world");
  EXPECT_EQ(Str("substring(//s, 7)"), "world");
  EXPECT_EQ(Str("substring(//s, 1, 5)"), "hello");
  EXPECT_EQ(Str("substring('12345', 1.5, 2.6)"), "234");
}

TEST_F(FunctionsTest, StringLengthAndNormalize) {
  EXPECT_EQ(Num("string-length(//s)"), 11);
  EXPECT_EQ(Num("string-length('')"), 0);
  EXPECT_EQ(Str("normalize-space(//w)"), "a b");
  EXPECT_EQ(Str("normalize-space('  x  ')"), "x");
  // Zero-argument forms use the context node (here: an <e/> element).
  EXPECT_EQ(Num("count(//e[string-length() = 0])"), 1);
  EXPECT_EQ(Num("count(//s[string-length() = 11])"), 1);
}

TEST_F(FunctionsTest, Translate) {
  EXPECT_EQ(Str("translate('bar', 'abc', 'ABC')"), "BAr");
  EXPECT_EQ(Str("translate('--aaa--', 'abc-', 'ABC')"), "AAA");
}

TEST_F(FunctionsTest, StringOfNumberLocksSection42EdgeCases) {
  // XPath 1.0 §4.2, audited end to end through string(number):
  // both zeros print "0" — including the -0 results of rounding and
  // multiplication, which naive sign propagation would print as "-0".
  EXPECT_EQ(Str("string(0)"), "0");
  EXPECT_EQ(Str("string(-0)"), "0");
  EXPECT_EQ(Str("string(0 * -1)"), "0");
  EXPECT_EQ(Str("string(round(-0.4))"), "0");  // round's [-0.5, 0) window
  // The three specials use exactly these spellings.
  EXPECT_EQ(Str("string(0 div 0)"), "NaN");
  EXPECT_EQ(Str("string(1 div 0)"), "Infinity");
  EXPECT_EQ(Str("string(-1 div 0)"), "-Infinity");
  // Integer-valued doubles print without a decimal point, at any
  // magnitude (the large ones exercise the exponent-expansion path).
  EXPECT_EQ(Str("string(1.0)"), "1");
  EXPECT_EQ(Str("string(-17)"), "-17");
  EXPECT_EQ(Str("string(6 div 3)"), "2");
  EXPECT_EQ(Str("string(100000000000000000000)"), "100000000000000000000");
  // Non-integers print the shortest round-tripping decimal and never
  // exponent notation, however small.
  EXPECT_EQ(Str("string(0.5)"), "0.5");
  EXPECT_EQ(Str("string(-0.5)"), "-0.5");
  EXPECT_EQ(Str("string(1 div 10000000)"), "0.0000001");
}

// --- Boolean functions --------------------------------------------------------

TEST_F(FunctionsTest, BooleanConversion) {
  EXPECT_TRUE(Bool("boolean(//a)"));
  EXPECT_FALSE(Bool("boolean(//nothing)"));
  EXPECT_TRUE(Bool("boolean(1)"));
  EXPECT_FALSE(Bool("boolean(0)"));
  EXPECT_FALSE(Bool("boolean(0 div 0)"));  // NaN
  EXPECT_TRUE(Bool("boolean('x')"));
  EXPECT_FALSE(Bool("boolean('')"));
  EXPECT_TRUE(Bool("not(false())"));
  EXPECT_FALSE(Bool("not(//a)"));
}

// --- Number functions ---------------------------------------------------------

TEST_F(FunctionsTest, NumberConversion) {
  EXPECT_EQ(Num("number(' 42 ')"), 42);
  EXPECT_EQ(Num("number(//n)"), 42);
  EXPECT_EQ(Num("number(//neg)"), -7.5);
  EXPECT_TRUE(std::isnan(Num("number(//bad)")));
  EXPECT_TRUE(std::isnan(Num("number(//nothing)")));
  EXPECT_EQ(Num("number(true())"), 1);
  EXPECT_EQ(Num("number(false())"), 0);
}

TEST_F(FunctionsTest, FloorCeilingRound) {
  EXPECT_EQ(Num("floor(2.7)"), 2);
  EXPECT_EQ(Num("floor(-2.1)"), -3);
  EXPECT_EQ(Num("ceiling(2.1)"), 3);
  EXPECT_EQ(Num("ceiling(-2.7)"), -2);
  EXPECT_EQ(Num("round(2.5)"), 3);
  EXPECT_EQ(Num("round(-2.5)"), -2);
  EXPECT_TRUE(std::isnan(Num("round(0 div 0)")));
}

TEST_F(FunctionsTest, Arithmetic) {
  EXPECT_EQ(Num("1 + 2 * 3"), 7);
  EXPECT_EQ(Num("10 div 4"), 2.5);
  EXPECT_EQ(Num("5 mod 2"), 1);
  EXPECT_EQ(Num("5 mod -2"), 1);    // sign of dividend
  EXPECT_EQ(Num("-5 mod 2"), -1);
  EXPECT_EQ(Num("1.5 mod 0.5"), 0);
  EXPECT_EQ(Num("-3 - -4"), 1);
  EXPECT_TRUE(std::isinf(Num("1 div 0")));
  EXPECT_TRUE(std::isnan(Num("0 div 0")));
}

// --- Comparison dispatch (Figure 1) -----------------------------------------

TEST_F(FunctionsTest, NodeSetVersusNumber) {
  EXPECT_TRUE(Bool("//a = 2"));    // existential
  EXPECT_FALSE(Bool("//a = 4"));
  EXPECT_TRUE(Bool("//a != 2"));   // some node differs — both can hold!
  EXPECT_TRUE(Bool("//a > 2"));
  EXPECT_FALSE(Bool("//a > 3"));
  EXPECT_TRUE(Bool("2 < //a"));
  EXPECT_FALSE(Bool("//nothing = 0"));
  EXPECT_FALSE(Bool("//nothing != 0"));  // empty set: no witness
}

TEST_F(FunctionsTest, NodeSetVersusString) {
  EXPECT_TRUE(Bool("//s = 'hello world'"));
  EXPECT_FALSE(Bool("//s = 'hello'"));
  EXPECT_TRUE(Bool("//a = '2'"));
}

TEST_F(FunctionsTest, NodeSetVersusNodeSet) {
  // ∃ pair with equal string-values.
  EXPECT_TRUE(Bool("//a = //a"));
  EXPECT_FALSE(Bool("//a = //s"));
  EXPECT_TRUE(Bool("//a < //a"));  // 1 < 3
  EXPECT_FALSE(Bool("//nothing = //a"));
}

TEST_F(FunctionsTest, NodeSetVersusBoolean) {
  EXPECT_TRUE(Bool("//a = true()"));        // non-empty = true
  EXPECT_TRUE(Bool("//nothing = false()"));
  EXPECT_FALSE(Bool("//nothing = true()"));
}

TEST_F(FunctionsTest, ScalarComparisons) {
  EXPECT_TRUE(Bool("1 = 1"));
  EXPECT_FALSE(Bool("1 = 2"));
  EXPECT_TRUE(Bool("'a' = 'a'"));
  EXPECT_FALSE(Bool("'a' = 'b'"));
  EXPECT_TRUE(Bool("true() = 1"));      // boolean dominates equality
  EXPECT_TRUE(Bool("false() = ''"));
  EXPECT_TRUE(Bool("1 = '1'"));         // number dominates string
  EXPECT_TRUE(Bool("'2' > '1'"));       // order ops compare numbers
  EXPECT_FALSE(Bool("'a' < 'b'"));      // NaN comparisons are false
  EXPECT_TRUE(Bool("'a' != 'b'"));
}

TEST_F(FunctionsTest, LangFunction) {
  xml::Document doc = MustParse(
      "<doc xml:lang=\"en\"><para id=\"p1\"/>"
      "<para id=\"p2\" xml:lang=\"en-GB\"/>"
      "<para id=\"p3\" xml:lang=\"DE\"><s id=\"s1\"/></para></doc>");
  // Inherited from <doc>.
  EXPECT_EQ(test::EvalIds("//para[lang('en')]", doc),
            (std::vector<std::string>{"p1", "p2"}));  // en-GB is a sub-lang
  // Case-insensitive.
  EXPECT_EQ(test::EvalIds("//para[lang('de')]", doc),
            (std::vector<std::string>{"p3"}));
  // Nested inheritance.
  EXPECT_EQ(test::EvalIds("//s[lang('de')]", doc),
            (std::vector<std::string>{"s1"}));
  // Sublanguage does not match the other way around.
  EXPECT_EQ(test::EvalIds("//para[lang('en-GB')]", doc),
            (std::vector<std::string>{"p2"}));
  // No xml:lang in scope → false.
  xml::Document bare = MustParse("<a><b id=\"b1\"/></a>");
  EXPECT_TRUE(test::EvalIds("//b[lang('en')]", bare).empty());
}

TEST_F(FunctionsTest, LangAgreesAcrossEngines) {
  xml::Document doc = MustParse(
      "<doc xml:lang=\"en\"><p id=\"a\"/><p id=\"b\" xml:lang=\"fr\"/></doc>");
  for (EngineKind engine : test::ConformanceEngines()) {
    EXPECT_EQ(test::EvalIds("//p[lang('en')]", doc, engine),
              (std::vector<std::string>{"a"}))
        << EngineKindToString(engine);
  }
}

TEST_F(FunctionsTest, NaNNeverEqual) {
  EXPECT_FALSE(Bool("(0 div 0) = (0 div 0)"));
  EXPECT_TRUE(Bool("(0 div 0) != (0 div 0)"));
  EXPECT_FALSE(Bool("(0 div 0) < 1"));
  EXPECT_FALSE(Bool("(0 div 0) > 1"));
}

// --- position()/last() within predicates --------------------------------------

TEST_F(FunctionsTest, PositionalPredicates) {
  EXPECT_EQ(Num("count(//a[position() = 1])"), 1);
  EXPECT_EQ(Num("count(//a[position() < 3])"), 2);
  EXPECT_EQ(Num("count(//a[last()])"), 1);
  EXPECT_EQ(Str("string(//a[last()])"), "3");
  EXPECT_EQ(Str("string(//a[position() = last() - 1])"), "2");
  // Positions are recomputed between predicates.
  EXPECT_EQ(Str("string(//a[position() > 1][1])"), "2");
  EXPECT_EQ(Str("string(//a[position() > 1][position() = last()])"), "3");
}

TEST_F(FunctionsTest, ReverseAxisPositions) {
  // For reverse axes, position counts in reverse document order.
  EXPECT_EQ(Str("string(//a[3]/preceding-sibling::a[1])"), "2");
  EXPECT_EQ(Str("string(//a[3]/preceding-sibling::a[2])"), "1");
  EXPECT_EQ(Str("string(//s/preceding-sibling::a[last()])"), "1");
}

TEST_F(FunctionsTest, WholeQueryContextPositions) {
  // The evaluation context's position/size feed position()/last().
  xpath::CompiledQuery q = test::MustCompile("position() + last()");
  EvalContext ctx;
  ctx.node = 1;
  ctx.position = 3;
  ctx.size = 8;
  StatusOr<Value> v = Evaluate(q, doc_, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->number(), 11);
}

}  // namespace
}  // namespace xpe
