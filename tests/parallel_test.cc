// Intra-query parallelism (src/exec/): the partitioned step kernels must
// be invisible except in wall-clock — results, EvalStats and profiler
// accounting bit-identical to sequential evaluation.
//
// Four layers of coverage:
//  - executor unit tests: every task runs exactly once, slot ids stay in
//    bounds, nested Run calls run inline (InParallelRegion), the shared
//    pool is a process-wide singleton;
//  - merge unit tests: KWayMergeUnique is the document-order dedup merge
//    its callers assume, including the limit cutoff;
//  - the parallel differential: one corpus over all six engines × index
//    on/off × all five result modes × worker counts 1/2/4/8, holding the
//    Value AND the EvalStats rendering equal to a parallel-off run —
//    parallelism may only ever change wall-clock, never answers or
//    accounting;
//  - composition: early termination still short-circuits under parallel
//    eval (the kExists cancellation path), budgets still trip, profiler
//    rows still reconcile, and BatchEvaluator workers with parallel
//    items share the one process-wide pool (ISSUE 7 bugfix satellite).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/executor.h"
#include "src/exec/parallel_step.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::MustCompile;

// --- executor ---------------------------------------------------------------

TEST(ExecutorTest, RunsEveryTaskExactlyOnce) {
  exec::Executor executor(/*pool_threads=*/3);
  constexpr uint32_t kTasks = 1000;
  std::vector<std::atomic<uint32_t>> hits(kTasks);
  executor.Run(kTasks, /*max_workers=*/4, [&](uint32_t task, uint32_t slot) {
    EXPECT_LT(task, kTasks);
    EXPECT_LT(slot, 4u);
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint32_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[t].load(), 1u) << "task " << t;
  }
}

TEST(ExecutorTest, TaskEffectsAreVisibleAfterRun) {
  exec::Executor executor(/*pool_threads=*/2);
  std::vector<uint64_t> cells(256, 0);  // plain writes, disjoint per task
  executor.Run(256, 8,
               [&](uint32_t task, uint32_t) { cells[task] = task + 1; });
  for (uint32_t t = 0; t < 256; ++t) EXPECT_EQ(cells[t], t + 1u);
}

TEST(ExecutorTest, ZeroAndOneTaskShapesWork) {
  exec::Executor executor(/*pool_threads=*/2);
  executor.Run(0, 4, [&](uint32_t, uint32_t) { FAIL() << "no tasks exist"; });
  uint32_t ran = 0;
  executor.Run(1, 4, [&](uint32_t task, uint32_t slot) {
    EXPECT_EQ(task, 0u);
    EXPECT_EQ(slot, 0u);  // single task runs inline on the caller
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(ExecutorTest, EmptyPoolRunsInlineInTaskOrder) {
  exec::Executor executor(/*pool_threads=*/0);
  EXPECT_EQ(executor.pool_threads(), 0u);
  std::vector<uint32_t> order;
  executor.Run(8, 4, [&](uint32_t task, uint32_t slot) {
    EXPECT_EQ(slot, 0u);
    order.push_back(task);
  });
  ASSERT_EQ(order.size(), 8u);
  for (uint32_t t = 0; t < 8; ++t) EXPECT_EQ(order[t], t);
}

TEST(ExecutorTest, NestedRunRunsInlineOnTheCallingThread) {
  exec::Executor executor(/*pool_threads=*/2);
  EXPECT_FALSE(exec::Executor::InParallelRegion());
  std::atomic<uint32_t> inner_total{0};
  std::atomic<bool> saw_region{false};
  executor.Run(4, 4, [&](uint32_t, uint32_t) {
    if (exec::Executor::InParallelRegion()) saw_region.store(true);
    const std::thread::id outer_thread = std::this_thread::get_id();
    // A Run from inside a task must not recurse into the pool.
    executor.Run(3, 4, [&](uint32_t, uint32_t slot) {
      EXPECT_EQ(slot, 0u);
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_TRUE(saw_region.load());
  EXPECT_EQ(inner_total.load(), 12u);
  EXPECT_FALSE(exec::Executor::InParallelRegion());
}

TEST(ExecutorTest, SharedPoolIsAProcessWideSingleton) {
  exec::Executor& a = exec::Executor::Shared();
  exec::Executor& b = exec::Executor::Shared();
  EXPECT_EQ(&a, &b);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(a.pool_threads(), hw > 1 ? hw - 1 : 0);
}

// --- policy / chunk planning ------------------------------------------------

TEST(ParallelPolicyTest, DisabledOrNestedStaysSequential) {
  exec::ParallelOptions off;
  EXPECT_FALSE(exec::MakePolicy(off, ResultMode::kFull).active());

  exec::ParallelOptions on;
  on.enabled = true;
  on.max_workers = 4;
  EXPECT_TRUE(exec::MakePolicy(on, ResultMode::kFull).active());
  EXPECT_FALSE(exec::MakePolicy(on, ResultMode::kFull).cancel_on_limit);
  EXPECT_TRUE(exec::MakePolicy(on, ResultMode::kExists).cancel_on_limit);
  // kFirst/kLimit need the exact document-order prefix: no cancellation.
  EXPECT_FALSE(exec::MakePolicy(on, ResultMode::kFirst).cancel_on_limit);
  EXPECT_FALSE(exec::MakePolicy(on, ResultMode::kLimit).cancel_on_limit);

  // From inside an executor task the policy must resolve to sequential,
  // whatever the options say — nested parallel regions run inline.
  exec::Executor executor(/*pool_threads=*/1);
  executor.Run(1, 1, [&](uint32_t, uint32_t) {
    EXPECT_FALSE(exec::MakePolicy(on, ResultMode::kFull).active());
  });
}

TEST(ParallelPolicyTest, PlanChunksHonorsTheCutoff) {
  exec::ParallelPolicy policy;
  policy.max_workers = 4;
  policy.min_work = 1000;
  uint64_t chunk = 0;
  EXPECT_EQ(exec::PlanChunks(999, policy, &chunk), 0u) << "under the cutoff";
  const uint32_t n = exec::PlanChunks(100000, policy, &chunk);
  EXPECT_GE(n, 2u);
  EXPECT_GE(chunk, policy.min_work / 4);
  EXPECT_GE(uint64_t{n} * chunk, 100000u) << "chunks must cover the work";

  exec::ParallelPolicy sequential;  // max_workers = 1
  EXPECT_EQ(exec::PlanChunks(100000, sequential, &chunk), 0u);
}

// --- k-way merge ------------------------------------------------------------

TEST(KWayMergeTest, MergesDedupsAndTruncates) {
  using Run = std::vector<xml::NodeId>;
  std::vector<Run> runs = {{1, 4, 7}, {2, 4, 9}, {}, {4, 5}};
  std::vector<xml::NodeId> out;
  exec::KWayMergeUnique(runs, &out);
  EXPECT_EQ(out, (Run{1, 2, 4, 5, 7, 9}));

  exec::KWayMergeUnique(runs, &out, /*limit=*/3);
  EXPECT_EQ(out, (Run{1, 2, 4}));

  std::vector<Run> empty;
  exec::KWayMergeUnique(empty, &out);
  EXPECT_TRUE(out.empty());
}

// --- the parallel differential ----------------------------------------------

/// Queries chosen so every partitioned kernel shape fires somewhere:
/// descendant scans and postings walks (`//x`), frontier-chunked child /
/// attribute / parent steps, the sequential fallbacks (ancestor,
/// following), Wadler backward restrictions, predicates and scalars.
const char* kParallelCorpus[] = {
    "//a",
    "//a/b",
    "//a//b",
    "//b/parent::a",
    "//c/ancestor::a",
    "//a/following::b",
    "//a[b]//c",
    "//a[.//c]/b",
    "//b[position() = 2]",
    "count(//a//b)",
    "boolean(//a[c])",
};

/// Attribute-axis spellings need a document that has attributes
/// (MakeRandomDocument generates none); the bibliography corpus does.
const char* kAttributeCorpus[] = {
    "//book/@year",
    "//book[@year]/title",
    "count(//@id)",
};

struct ParallelDiffCase {
  EngineKind engine;
  bool use_index;
  /// The tier serving the indexed kernels (ignored for scan cases):
  /// the partitioned parallel paths must be bit-identical across flat
  /// and succinct postings, results and stats both.
  index::IndexTier tier = index::IndexTier::kHot;
};

/// The table-filling engines pay |D|²-and-worse per evaluation, so they
/// get a small document; the linear engines get one large enough that
/// every chunked kernel genuinely partitions. min_frontier = 1 in the
/// differential makes the small documents chunk too.
int DifferentialDocSize(EngineKind engine) {
  switch (engine) {
    case EngineKind::kOptMinContext:
    case EngineKind::kCoreXPath:
      return 1200;
    default:
      return 90;
  }
}

class ParallelDifferentialTest
    : public testing::TestWithParam<ParallelDiffCase> {};

void ExpectParallelMatchesSequential(const xml::Document& doc,
                                     std::span<const char* const> corpus,
                                     const ParallelDiffCase& c) {
  doc.WarmCaches();
  for (const char* query : corpus) {
    const xpath::CompiledQuery plan = MustCompile(query);
    if (c.engine == EngineKind::kCoreXPath &&
        plan.fragment() != xpath::Fragment::kCoreXPath) {
      continue;
    }
    struct ModeCase {
      ResultMode mode;
      uint64_t limit;
    };
    const ModeCase modes[] = {{ResultMode::kFull, 0},
                              {ResultMode::kFirst, 0},
                              {ResultMode::kExists, 0},
                              {ResultMode::kCount, 0},
                              {ResultMode::kLimit, 3}};
    for (const ModeCase& mode : modes) {
      if (mode.mode != ResultMode::kFull &&
          plan.result_type() != xpath::ValueType::kNodeSet) {
        continue;
      }
      EvalStats want_stats;
      EvalOptions opts;
      opts.engine = c.engine;
      opts.use_index = c.use_index;
      if (c.use_index) opts.index_tier = c.tier;
      opts.result.mode = mode.mode;
      opts.result.limit = mode.limit;
      opts.stats = &want_stats;
      StatusOr<Value> want = Evaluate(plan, doc, {}, opts);
      ASSERT_TRUE(want.ok()) << query << ": " << want.status().ToString();

      for (uint32_t workers : {1u, 2u, 4u, 8u}) {
        const std::string label =
            std::string(query) + " on " + EngineKindToString(c.engine) +
            (c.use_index ? std::string(" +index:") +
                               index::IndexTierToString(c.tier)
                         : std::string(" -index")) +
            " mode " + ResultModeToString(mode.mode) + " workers " +
            std::to_string(workers);
        EvalStats got_stats;
        EvalOptions popts = opts;
        popts.stats = &got_stats;
        popts.parallel.enabled = true;
        popts.parallel.max_workers = workers;
        popts.parallel.min_frontier = 1;  // force the partitioned paths
        StatusOr<Value> got = Evaluate(plan, doc, {}, popts);
        ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
        EXPECT_TRUE(got->StructurallyEquals(*want)) << label;
        EXPECT_EQ(got_stats.ToString(), want_stats.ToString()) << label;
      }
    }
  }
}

TEST_P(ParallelDifferentialTest, ResultsAndStatsMatchSequential) {
  const xml::Document doc = xml::MakeRandomDocument(
      DifferentialDocSize(GetParam().engine), {"a", "b", "c", "x"},
      /*seed=*/11);
  ExpectParallelMatchesSequential(doc, kParallelCorpus, GetParam());
}

TEST_P(ParallelDifferentialTest, AttributeStepsMatchSequential) {
  const xml::Document doc = xml::MakeBibliographyDocument(
      DifferentialDocSize(GetParam().engine) / 8);
  ExpectParallelMatchesSequential(doc, kAttributeCorpus, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ParallelDifferentialTest,
    testing::Values(
        ParallelDiffCase{EngineKind::kNaive, false},
        ParallelDiffCase{EngineKind::kBottomUp, false},
        ParallelDiffCase{EngineKind::kBottomUp, true},
        ParallelDiffCase{EngineKind::kBottomUp, true, index::IndexTier::kDense},
        ParallelDiffCase{EngineKind::kTopDown, false},
        ParallelDiffCase{EngineKind::kTopDown, true},
        ParallelDiffCase{EngineKind::kTopDown, true, index::IndexTier::kDense},
        ParallelDiffCase{EngineKind::kMinContext, false},
        ParallelDiffCase{EngineKind::kMinContext, true},
        ParallelDiffCase{EngineKind::kMinContext, true,
                         index::IndexTier::kDense},
        ParallelDiffCase{EngineKind::kOptMinContext, false},
        ParallelDiffCase{EngineKind::kOptMinContext, true},
        ParallelDiffCase{EngineKind::kOptMinContext, true,
                         index::IndexTier::kDense},
        ParallelDiffCase{EngineKind::kCoreXPath, false},
        ParallelDiffCase{EngineKind::kCoreXPath, true},
        ParallelDiffCase{EngineKind::kCoreXPath, true,
                         index::IndexTier::kDense}),
    [](const testing::TestParamInfo<ParallelDiffCase>& info) {
      std::string name = EngineKindToString(info.param.engine);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      if (!info.param.use_index) return name + "_scan";
      return name + "_" + index::IndexTierToString(info.param.tier);
    });

// --- early termination under parallel eval ----------------------------------

TEST(ParallelEarlyTerminationTest, ExistsStillShortCircuits) {
  // One "x" needle per 99 fillers over 20k elements: the indexed
  // descendant probe stops at the first posting. Exists must keep doing
  // so when the step kernels are partitioned — the kExists cancellation
  // path may only ever save wall-clock, never change the counters. (The
  // scan path is exempt from the "far fewer nodes" claim even
  // sequentially: it materializes the full axis image under any limit,
  // and the parallel chunks reproduce that accounting — covered by the
  // differential above.)
  std::vector<std::string> labels = {"x"};
  for (int i = 0; i < 99; ++i) {
    labels.push_back("abcde" + std::to_string(i % 5));
  }
  const xml::Document doc = xml::MakeRandomDocument(20000, labels, /*seed=*/3);
  doc.WarmCaches();
  const xpath::CompiledQuery plan = MustCompile("//x");  // fuses to descendant

  xpath::CompileOptions unoptimized;
  unoptimized.optimize = false;
  const xpath::CompiledQuery unopt = MustCompile("//x", unoptimized);

  for (EngineKind engine :
       {EngineKind::kCoreXPath, EngineKind::kOptMinContext}) {
    const exec::ParallelOptions par = {
        .enabled = true, .max_workers = 4, .min_frontier = 1};
    EvalOptions opts;
    opts.engine = engine;
    opts.result.mode = ResultMode::kExists;

    EvalStats seq_exists;
    opts.stats = &seq_exists;
    ASSERT_TRUE(Evaluate(plan, doc, {}, opts).value().boolean());

    EvalStats par_exists;
    opts.stats = &par_exists;
    opts.parallel = par;
    ASSERT_TRUE(Evaluate(plan, doc, {}, opts).value().boolean());

    // The whole-document yardstick: the unoptimized normal form's full
    // materialization walks >= |D| nodes, parallel or not.
    EvalStats par_full;
    EvalOptions full;
    full.engine = engine;
    full.stats = &par_full;
    full.parallel = par;
    ASSERT_TRUE(Evaluate(unopt, doc, {}, full).ok());
    ASSERT_GE(par_full.nodes_visited, static_cast<uint64_t>(doc.size()))
        << EngineKindToString(engine);

    EXPECT_EQ(par_exists.ToString(), seq_exists.ToString())
        << EngineKindToString(engine);
    EXPECT_LT(par_exists.nodes_visited * 100, par_full.nodes_visited)
        << EngineKindToString(engine);
  }
}

// --- budget parity ----------------------------------------------------------

TEST(ParallelBudgetTest, BudgetsTripIdenticallyUnderParallelEval) {
  const xml::Document doc =
      xml::MakeRandomDocument(500, {"a", "b"}, /*seed=*/5);
  const xpath::CompiledQuery plan = MustCompile("//a//b");
  for (EngineKind engine :
       {EngineKind::kCoreXPath, EngineKind::kOptMinContext}) {
    EvalOptions opts;
    opts.engine = engine;
    opts.parallel = {.enabled = true, .max_workers = 4, .min_frontier = 1};

    opts.budget = 1;
    StatusOr<Value> tripped = Evaluate(plan, doc, {}, opts);
    ASSERT_FALSE(tripped.ok()) << EngineKindToString(engine);
    EXPECT_EQ(tripped.status().code(), StatusCode::kResourceExhausted)
        << EngineKindToString(engine);

    opts.budget = 1'000'000'000'000;
    EXPECT_TRUE(Evaluate(plan, doc, {}, opts).ok())
        << EngineKindToString(engine);
  }
}

// --- profiler reconciliation ------------------------------------------------

TEST(ParallelProfilerTest, StepRowsReconcileAndReportWorkers) {
  const xml::Document doc =
      xml::MakeRandomDocument(4000, {"a", "b", "x"}, /*seed=*/9);
  doc.WarmCaches();
  Query q = *Query::Compile("//a/b");
  q.With(EngineKind::kCoreXPath)
      .WithIndex(false)
      .WithParallel({.enabled = true, .max_workers = 4, .min_frontier = 1});
  const obs::ProfileReport report = *q.Profile(doc);
  ASSERT_FALSE(report.data.steps().empty());
  // The rows must reconcile exactly as they do sequentially...
  EXPECT_EQ(report.data.nodes_visited_total(), report.stats.nodes_visited);
  uint32_t widest = 0;
  for (const obs::QueryProfile::Step& step : report.data.steps()) {
    EXPECT_GE(step.workers_used, 1u);
    widest = std::max(widest, step.workers_used);
  }
  // ... and with min_frontier = 1 on a 4k-element document, at least one
  // step must actually have been partitioned.
  EXPECT_GT(widest, 1u);
  EXPECT_NE(report.data.ToString().find("workers"), std::string::npos);
}

// --- BatchEvaluator composition (the ISSUE 7 bugfix satellite) ---------------

TEST(ParallelBatchComposeTest, BatchWorkersWithParallelItemsStayCorrect) {
  const xml::Document doc =
      xml::MakeRandomDocument(800, {"a", "b", "c", "x"}, /*seed=*/21);
  doc.WarmCaches();
  const char* queries[] = {"//a//b", "//x", "count(//a[b])", "//a[.//c]/b"};

  std::vector<batch::BatchItem> items;
  for (int rep = 0; rep < 8; ++rep) {
    for (const char* q : queries) {
      items.push_back(batch::BatchItem{q, &doc, EvalContext{}});
    }
  }

  std::vector<Value> reference;
  for (const batch::BatchItem& item : items) {
    reference.push_back(
        *Evaluate(MustCompile(item.query), doc, item.context, EvalOptions{}));
  }

  // Batch workers × intra-query parallelism: both layers draw on the one
  // process-wide executor pool, so this oversubscribed shape must still
  // produce sequential-identical results (and, under the TSan CI job,
  // race-free ones).
  batch::BatchOptions options;
  options.workers = 4;
  options.eval.parallel = {
      .enabled = true, .max_workers = 4, .min_frontier = 1};
  batch::BatchEvaluator pool(options);
  const std::vector<batch::BatchResult> results = pool.EvaluateAll(items);
  ASSERT_EQ(results.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(results[i].value.ok()) << items[i].query;
    EXPECT_TRUE(results[i].value->StructurallyEquals(reference[i]))
        << items[i].query << " item " << i;
  }
}

}  // namespace
}  // namespace xpe
