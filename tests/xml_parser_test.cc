#include <gtest/gtest.h>

#include "src/xml/parser.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace xpe::xml {
namespace {

using test::MustParse;

TEST(XmlParserTest, MinimalDocument) {
  Document doc = MustParse("<a/>");
  ASSERT_EQ(doc.size(), 2u);  // root + <a>
  EXPECT_EQ(doc.kind(0), NodeKind::kRoot);
  EXPECT_EQ(doc.kind(1), NodeKind::kElement);
  EXPECT_EQ(doc.name(1), "a");
  EXPECT_EQ(doc.parent(1), 0u);
}

TEST(XmlParserTest, NestedElements) {
  Document doc = MustParse("<a><b><c/></b><d/></a>");
  ASSERT_EQ(doc.size(), 5u);
  EXPECT_EQ(doc.name(1), "a");
  EXPECT_EQ(doc.name(2), "b");
  EXPECT_EQ(doc.name(3), "c");
  EXPECT_EQ(doc.name(4), "d");
  EXPECT_EQ(doc.parent(3), 2u);
  EXPECT_EQ(doc.next_sibling(2), 4u);
  EXPECT_EQ(doc.prev_sibling(4), 2u);
  EXPECT_EQ(doc.subtree_end(2), 4u);
  EXPECT_EQ(doc.subtree_end(1), 5u);
}

TEST(XmlParserTest, TextContent) {
  Document doc = MustParse("<a>hello</a>");
  ASSERT_EQ(doc.size(), 3u);
  EXPECT_EQ(doc.kind(2), NodeKind::kText);
  EXPECT_EQ(doc.content(2), "hello");
  EXPECT_EQ(doc.StringValue(1), "hello");
}

TEST(XmlParserTest, MixedContent) {
  Document doc = MustParse("<a>x<b>y</b>z</a>");
  EXPECT_EQ(doc.StringValue(1), "xyz");
  EXPECT_EQ(doc.StringValue(0), "xyz");
}

TEST(XmlParserTest, Attributes) {
  Document doc = MustParse("<a x=\"1\" y='two'/>");
  EXPECT_EQ(doc.AttrEnd(1) - doc.AttrBegin(1), 2u);
  EXPECT_EQ(*doc.Attribute(1, "x"), "1");
  EXPECT_EQ(*doc.Attribute(1, "y"), "two");
  EXPECT_FALSE(doc.Attribute(1, "z").has_value());
  EXPECT_EQ(doc.kind(2), NodeKind::kAttribute);
  EXPECT_EQ(doc.parent(2), 1u);
}

TEST(XmlParserTest, AttributeValueNormalization) {
  // Tabs/newlines in attribute values become spaces.
  Document doc = MustParse("<a x=\"1\t2\n3\"/>");
  EXPECT_EQ(*doc.Attribute(1, "x"), "1 2 3");
}

TEST(XmlParserTest, PredefinedEntities) {
  Document doc = MustParse("<a>&lt;&gt;&amp;&apos;&quot;</a>");
  EXPECT_EQ(doc.StringValue(1), "<>&'\"");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  Document doc = MustParse("<a>&#65;&#x42;&#xe9;</a>");
  EXPECT_EQ(doc.StringValue(1), "AB\xC3\xA9");  // A B é(UTF-8)
}

TEST(XmlParserTest, EntitiesInAttributes) {
  Document doc = MustParse("<a x=\"&lt;&amp;&quot;\"/>");
  EXPECT_EQ(*doc.Attribute(1, "x"), "<&\"");
}

TEST(XmlParserTest, CData) {
  Document doc = MustParse("<a><![CDATA[<not>&parsed;]]></a>");
  EXPECT_EQ(doc.StringValue(1), "<not>&parsed;");
}

TEST(XmlParserTest, CDataJoinsAdjacentText) {
  Document doc = MustParse("<a>x<![CDATA[y]]>z</a>");
  ASSERT_EQ(doc.size(), 3u);  // one coalesced text node
  EXPECT_EQ(doc.content(2), "xyz");
}

TEST(XmlParserTest, Comments) {
  Document doc = MustParse("<a><!-- hi --><b/></a>");
  EXPECT_EQ(doc.kind(2), NodeKind::kComment);
  EXPECT_EQ(doc.content(2), " hi ");
  // Comments do not contribute to string-value.
  EXPECT_EQ(doc.StringValue(1), "");
}

TEST(XmlParserTest, ProcessingInstructions) {
  Document doc = MustParse("<a><?php echo 1; ?></a>");
  EXPECT_EQ(doc.kind(2), NodeKind::kProcessingInstruction);
  EXPECT_EQ(doc.name(2), "php");
  EXPECT_EQ(doc.content(2), "echo 1; ");
}

TEST(XmlParserTest, XmlDeclarationAndDoctype) {
  Document doc = MustParse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE a [<!ELEMENT a ANY>]>\n"
      "<a/>");
  EXPECT_EQ(doc.size(), 2u);
}

TEST(XmlParserTest, PrologAndTailComments) {
  Document doc = MustParse("<!--pre--><a/><!--post-->");
  // Prolog/tail comments become children of the root.
  EXPECT_EQ(doc.kind(1), NodeKind::kComment);
  EXPECT_EQ(doc.kind(2), NodeKind::kElement);
  EXPECT_EQ(doc.kind(3), NodeKind::kComment);
}

TEST(XmlParserTest, WhitespacePreserveVsDiscard) {
  const char* text = "<a>\n  <b/>\n</a>";
  Document keep = MustParse(text);
  EXPECT_EQ(keep.size(), 5u);  // root, a, text, b, text
  ParseOptions discard;
  discard.whitespace = WhitespaceMode::kDiscard;
  Document drop = MustParse(text, discard);
  EXPECT_EQ(drop.size(), 3u);  // root, a, b
}

TEST(XmlParserTest, IdIndexFromIdAttributes) {
  Document doc = MustParse("<a id=\"10\"><b id=\"11\"/></a>");
  EXPECT_EQ(*doc.GetElementById("10"), 1u);
  auto b = doc.GetElementById("11");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(doc.name(*b), "b");
  EXPECT_FALSE(doc.GetElementById("99").has_value());
}

TEST(XmlParserTest, CustomIdAttributeName) {
  ParseOptions options;
  options.id_attribute_name = "key";
  Document doc = MustParse("<a key=\"k1\" id=\"ignored\"/>", options);
  EXPECT_TRUE(doc.GetElementById("k1").has_value());
  EXPECT_FALSE(doc.GetElementById("ignored").has_value());
}

TEST(XmlParserTest, DerefIdsSplitsOnWhitespace) {
  Document doc = MustParse("<a id=\"x\"><b id=\"y\"/><c id=\"z\"/></a>");
  std::vector<NodeId> nodes = doc.DerefIds(" z \n x x ");
  ASSERT_EQ(nodes.size(), 2u);  // deduplicated, document order
  EXPECT_EQ(doc.name(nodes[0]), "a");
  EXPECT_EQ(doc.name(nodes[1]), "c");
}

TEST(XmlParserTest, Utf8Passthrough) {
  Document doc = MustParse("<a>grüße ≤ ≥</a>");
  EXPECT_EQ(doc.StringValue(1), "grüße ≤ ≥");
}

TEST(XmlParserTest, BomIsSkipped) {
  Document doc = MustParse("\xEF\xBB\xBF<a/>");
  EXPECT_EQ(doc.size(), 2u);
}

TEST(XmlParserTest, DeepNesting) {
  std::string text;
  for (int i = 0; i < 500; ++i) text += "<d>";
  for (int i = 0; i < 500; ++i) text += "</d>";
  Document doc = MustParse(text);
  EXPECT_EQ(doc.size(), 501u);
}

// --- Malformed documents ----------------------------------------------------

struct BadXmlCase {
  const char* name;
  const char* text;
};

class XmlParserErrorTest : public testing::TestWithParam<BadXmlCase> {};

TEST_P(XmlParserErrorTest, IsRejected) {
  StatusOr<Document> doc = Parse(GetParam().text);
  EXPECT_FALSE(doc.ok()) << "accepted: " << GetParam().text;
  if (!doc.ok()) {
    EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
    EXPECT_GT(doc.status().column(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    testing::Values(
        BadXmlCase{"Empty", ""},
        BadXmlCase{"TextOnly", "just text"},
        BadXmlCase{"UnclosedTag", "<a>"},
        BadXmlCase{"MismatchedTags", "<a></b>"},
        BadXmlCase{"CrossedTags", "<a><b></a></b>"},
        BadXmlCase{"TwoRoots", "<a/><b/>"},
        BadXmlCase{"TextAfterRoot", "<a/>tail"},
        BadXmlCase{"UnquotedAttr", "<a x=1/>"},
        BadXmlCase{"DuplicateAttr", "<a x=\"1\" x=\"2\"/>"},
        BadXmlCase{"MissingAttrEquals", "<a x\"1\"/>"},
        BadXmlCase{"LtInAttr", "<a x=\"<\"/>"},
        BadXmlCase{"UnknownEntity", "<a>&nope;</a>"},
        BadXmlCase{"BareAmp", "<a>a & b</a>"},
        BadXmlCase{"BadCharRef", "<a>&#xZZ;</a>"},
        BadXmlCase{"HugeCharRef", "<a>&#x110000;</a>"},
        BadXmlCase{"NulCharRef", "<a>&#0;</a>"},
        BadXmlCase{"UnterminatedComment", "<a><!-- x</a>"},
        BadXmlCase{"DoubleDashComment", "<a><!-- a -- b --></a>"},
        BadXmlCase{"UnterminatedCData", "<a><![CDATA[x</a>"},
        BadXmlCase{"CDataCloseInText", "<a>]]></a>"},
        BadXmlCase{"UnterminatedPi", "<a><?pi x</a>"},
        BadXmlCase{"PiNamedXml", "<a><?xml ?></a>"},
        BadXmlCase{"UnterminatedDoctype", "<!DOCTYPE a <a/>"},
        BadXmlCase{"BadName", "<1a/>"},
        BadXmlCase{"SpaceBeforeName", "< a/>"},
        BadXmlCase{"EofInAttrValue", "<a x=\"1"}),
    [](const testing::TestParamInfo<BadXmlCase>& info) {
      return info.param.name;
    });

// --- Serializer round-trips -------------------------------------------------

TEST(SerializerTest, RoundTripsCompact) {
  const char* text =
      "<a id=\"1\"><b>text &amp; more</b><c x=\"&quot;q&quot;\"/>"
      "<!--note--><?pi data?></a>";
  Document doc = MustParse(text);
  const std::string out = Serialize(doc);
  Document again = MustParse(out);
  EXPECT_EQ(Serialize(again), out);
  EXPECT_EQ(again.size(), doc.size());
}

TEST(SerializerTest, EscapesTextAndAttributes) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeAttribute("say \"hi\" & <go>"),
            "say &quot;hi&quot; &amp; &lt;go>");
}

TEST(SerializerTest, EmptyElementUsesSelfClosing) {
  Document doc = MustParse("<a><b></b></a>");
  EXPECT_EQ(Serialize(doc), "<a><b/></a>");
}

TEST(SerializerTest, PrettyPrintSkipsMixedContent) {
  Document doc = MustParse("<a><b>keep me</b><c/></a>");
  SerializeOptions options;
  options.indent = "  ";
  const std::string out = Serialize(doc, options);
  EXPECT_NE(out.find("<b>keep me</b>"), std::string::npos);
  EXPECT_NE(out.find("\n  <c/>"), std::string::npos);
}

TEST(SerializerTest, XmlDeclaration) {
  Document doc = MustParse("<a/>");
  SerializeOptions options;
  options.xml_declaration = true;
  EXPECT_EQ(Serialize(doc, options), "<?xml version=\"1.0\"?><a/>");
}

TEST(SerializerTest, PaperDocumentRoundTrip) {
  Document doc = xml::MakePaperDocument();
  Document again = MustParse(Serialize(doc));
  EXPECT_EQ(again.size(), doc.size());
  EXPECT_EQ(Serialize(again), Serialize(doc));
}

}  // namespace
}  // namespace xpe::xml
