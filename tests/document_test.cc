#include <gtest/gtest.h>

#include <cmath>

#include "src/xml/document.h"
#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe::xml {
namespace {

using test::MustParse;

class PaperDocumentTest : public testing::Test {
 protected:
  PaperDocumentTest() : doc_(MakePaperDocument()) {}

  NodeId X(const std::string& id) const {
    auto node = doc_.GetElementById(id);
    EXPECT_TRUE(node.has_value()) << "no element with id " << id;
    return node.value_or(kInvalidNodeId);
  }

  Document doc_;
};

TEST_F(PaperDocumentTest, HasAllPaperNodes) {
  // The nine elements x10..x24 of Figure 2.
  for (const char* id :
       {"10", "11", "12", "13", "14", "21", "22", "23", "24"}) {
    EXPECT_TRUE(doc_.GetElementById(id).has_value()) << id;
  }
}

TEST_F(PaperDocumentTest, StructureMatchesFigure2) {
  EXPECT_EQ(doc_.name(X("10")), "a");
  EXPECT_EQ(doc_.name(X("11")), "b");
  EXPECT_EQ(doc_.name(X("12")), "c");
  EXPECT_EQ(doc_.name(X("14")), "d");
  EXPECT_EQ(doc_.name(X("24")), "d");
  EXPECT_EQ(doc_.parent(X("11")), X("10"));
  EXPECT_EQ(doc_.parent(X("12")), X("11"));
  EXPECT_EQ(doc_.parent(X("23")), X("21"));
}

TEST_F(PaperDocumentTest, DocumentOrderMatchesIdOrder) {
  // x10 <doc x11 <doc ... <doc x24 — NodeIds are document order.
  const char* ids[] = {"10", "11", "12", "13", "14", "21", "22", "23", "24"};
  for (int i = 0; i + 1 < 9; ++i) {
    EXPECT_LT(X(ids[i]), X(ids[i + 1]));
  }
}

TEST_F(PaperDocumentTest, StringValues) {
  EXPECT_EQ(doc_.StringValue(X("12")), "21 22");
  EXPECT_EQ(doc_.StringValue(X("14")), "100");
  EXPECT_EQ(doc_.StringValue(X("24")), "100");
  EXPECT_EQ(doc_.StringValue(X("11")), "21 2223 24100");
  EXPECT_EQ(doc_.StringValue(X("10")), "21 2223 2410011 1213 14100");
}

TEST_F(PaperDocumentTest, NumberValues) {
  EXPECT_EQ(doc_.NumberValue(X("14")), 100.0);
  EXPECT_EQ(doc_.NumberValue(X("24")), 100.0);
  EXPECT_TRUE(std::isnan(doc_.NumberValue(X("12"))));  // "21 22"
  EXPECT_TRUE(std::isnan(doc_.NumberValue(X("11"))));
  // Cached second read agrees.
  EXPECT_EQ(doc_.NumberValue(X("14")), 100.0);
}

TEST_F(PaperDocumentTest, IsAncestor) {
  EXPECT_TRUE(doc_.IsAncestor(X("10"), X("14")));
  EXPECT_TRUE(doc_.IsAncestor(X("11"), X("12")));
  EXPECT_FALSE(doc_.IsAncestor(X("12"), X("11")));
  EXPECT_FALSE(doc_.IsAncestor(X("11"), X("11")));
  EXPECT_FALSE(doc_.IsAncestor(X("11"), X("22")));
  EXPECT_TRUE(doc_.IsAncestor(doc_.root(), X("24")));
}

TEST_F(PaperDocumentTest, AttributeNodesHaveElementAncestors) {
  NodeId attr = doc_.AttrBegin(X("12"));
  ASSERT_LT(attr, doc_.AttrEnd(X("12")));
  EXPECT_TRUE(doc_.IsAttribute(attr));
  EXPECT_EQ(doc_.StringValue(attr), "12");
  EXPECT_TRUE(doc_.IsAncestor(X("12"), attr));
  EXPECT_TRUE(doc_.IsAncestor(X("10"), attr));
}

TEST_F(PaperDocumentTest, IdAxisFigure2) {
  // strval(x12) = "21 22" references x21 and x22 — the id-"axis" of §4.
  const std::vector<NodeId>& targets = doc_.IdAxisForward(X("12"));
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], X("21"));
  EXPECT_EQ(targets[1], X("22"));
  // Inverse direction: who references x21?
  const std::vector<NodeId>& sources = doc_.IdAxisInverse(X("21"));
  EXPECT_FALSE(sources.empty());
  bool found = false;
  for (NodeId s : sources) found = found || s == X("12");
  EXPECT_TRUE(found);
}

// --- DocumentBuilder --------------------------------------------------------

TEST(DocumentBuilderTest, BuildsTreeWithLinks) {
  DocumentBuilder b;
  b.StartElement("r");
  b.StartElement("x");
  b.EndElement();
  b.AddText("t");
  b.StartElement("y");
  b.EndElement();
  b.EndElement();
  StatusOr<Document> doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->size(), 5u);
  EXPECT_EQ(doc->first_child(1), 2u);
  EXPECT_EQ(doc->last_child(1), 4u);
  EXPECT_EQ(doc->next_sibling(2), 3u);
  EXPECT_EQ(doc->next_sibling(3), 4u);
  EXPECT_EQ(doc->prev_sibling(4), 3u);
}

TEST(DocumentBuilderTest, CoalescesAdjacentText) {
  DocumentBuilder b;
  b.StartElement("r");
  b.AddText("a");
  b.AddText("b");
  b.EndElement();
  StatusOr<Document> doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->size(), 3u);
  EXPECT_EQ(doc->content(2), "ab");
}

TEST(DocumentBuilderTest, RejectsUnbalancedFinish) {
  DocumentBuilder b;
  b.StartElement("r");
  StatusOr<Document> doc = std::move(b).Finish();
  EXPECT_FALSE(doc.ok());
}

TEST(DocumentBuilderTest, RejectsLateAttributes) {
  DocumentBuilder b;
  b.StartElement("r");
  b.AddText("x");
  b.AddAttribute("late", "1");
  b.EndElement();
  StatusOr<Document> doc = std::move(b).Finish();
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInternal);
}

TEST(DocumentBuilderTest, FirstIdWins) {
  DocumentBuilder b;
  b.StartElement("r");
  b.StartElement("a");
  b.AddAttribute("id", "k");
  b.EndElement();
  b.StartElement("b");
  b.AddAttribute("id", "k");
  b.EndElement();
  b.EndElement();
  StatusOr<Document> doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->name(*doc->GetElementById("k")), "a");
}

// --- Generators -------------------------------------------------------------

TEST(GeneratorTest, ExponentialDocumentShape) {
  Document doc = MakeExponentialDocument();
  ASSERT_EQ(doc.size(), 4u);  // root, a, b, b
  EXPECT_EQ(doc.name(1), "a");
  EXPECT_EQ(doc.name(2), "b");
  EXPECT_EQ(doc.name(3), "b");
}

TEST(GeneratorTest, GrownPaperDocumentScales) {
  Document one = MakeGrownPaperDocument(1);
  Document four = MakeGrownPaperDocument(4);
  EXPECT_GT(four.size(), one.size() * 3);
  // Each copy keeps its own id space.
  EXPECT_TRUE(four.GetElementById("14_0").has_value());
  EXPECT_TRUE(four.GetElementById("14_3").has_value());
  EXPECT_FALSE(four.GetElementById("14_4").has_value());
}

TEST(GeneratorTest, ChainDocumentDepth) {
  Document doc = MakeChainDocument(10);
  // root + r + 10 c's + text.
  EXPECT_EQ(doc.size(), 13u);
  NodeId deepest = 11;
  EXPECT_EQ(doc.name(deepest), "c");
  EXPECT_EQ(doc.StringValue(deepest), "100");
}

TEST(GeneratorTest, CompleteTreeCounts) {
  Document doc = MakeCompleteTreeDocument(2, 3);
  // 2^3 = 8 leaves, 7 inner 'n' nodes, 8 text nodes, root: 24.
  EXPECT_EQ(doc.size(), 24u);
}

TEST(GeneratorTest, NumericDocumentHundreds) {
  Document doc = MakeNumericDocument(14, 7);
  int hundreds = 0;
  for (NodeId n = 0; n < doc.size(); ++n) {
    if (doc.IsElement(n) && doc.name(n) == "v" &&
        doc.StringValue(n) == "100") {
      ++hundreds;
    }
  }
  EXPECT_EQ(hundreds, 2);  // leaves 7 and 14
}

TEST(GeneratorTest, BibliographyShape) {
  Document doc = MakeBibliographyDocument(8);
  EXPECT_TRUE(doc.GetElementById("bk0").has_value());
  EXPECT_TRUE(doc.GetElementById("bk7").has_value());
  EXPECT_EQ(doc.name(1), "bib");
}

TEST(GeneratorTest, RandomDocumentIsDeterministic) {
  const std::vector<std::string> labels = {"a", "b", "c"};
  Document d1 = MakeRandomDocument(50, labels, 7);
  Document d2 = MakeRandomDocument(50, labels, 7);
  Document d3 = MakeRandomDocument(50, labels, 8);
  EXPECT_EQ(d1.size(), d2.size());
  EXPECT_EQ(d1.DebugDump(), d2.DebugDump());
  EXPECT_NE(d1.DebugDump(), d3.DebugDump());
}

TEST(GeneratorTest, RandomDocumentElementCount) {
  const std::vector<std::string> labels = {"a", "b"};
  Document doc = MakeRandomDocument(80, labels, 3);
  int elements = 0;
  for (NodeId n = 0; n < doc.size(); ++n) {
    if (doc.IsElement(n)) ++elements;
  }
  EXPECT_EQ(elements, 80);
}

}  // namespace
}  // namespace xpe::xml
