#include <gtest/gtest.h>

#include "src/axes/axis.h"
#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using test::MustParse;
using xml::Document;
using xml::NodeId;
using xml::NodeKind;

// --- NodeSet ---------------------------------------------------------------

TEST(NodeSetTest, SortsAndDeduplicates) {
  NodeSet s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 5u);
  EXPECT_EQ(s.First(), 1u);
}

TEST(NodeSetTest, SetAlgebra) {
  NodeSet a({1, 2, 3});
  NodeSet b({2, 3, 4});
  EXPECT_EQ(a.Union(b), NodeSet({1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), NodeSet({2, 3}));
  EXPECT_EQ(a.Difference(b), NodeSet({1}));
  EXPECT_EQ(b.Difference(a), NodeSet({4}));
}

TEST(NodeSetTest, ContainsAndEmpty) {
  NodeSet s({2, 7});
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(NodeSet().empty());
  EXPECT_EQ(NodeSet().Union(s), s);
}

TEST(NodeSetTest, UniverseAndToString) {
  NodeSet u = NodeSet::Universe(3);
  EXPECT_EQ(u, NodeSet({0, 1, 2}));
  EXPECT_EQ(u.ToString(), "{0, 1, 2}");
  EXPECT_EQ(NodeSet().ToString(), "{}");
}

TEST(NodeBitmapTest, RoundTripsThroughNodeSet) {
  NodeSet s({0, 4, 9});
  NodeBitmap bm(10, s);
  EXPECT_TRUE(bm.Test(4));
  EXPECT_FALSE(bm.Test(5));
  bm.Set(5);
  bm.Clear(0);
  EXPECT_EQ(bm.ToNodeSet(), NodeSet({4, 5, 9}));
}

// --- Axis names -------------------------------------------------------------

TEST(AxisTest, NamesRoundTrip) {
  for (int i = 0; i < kNumAxes; ++i) {
    Axis axis = static_cast<Axis>(i);
    auto parsed = AxisFromString(AxisToString(axis));
    ASSERT_TRUE(parsed.has_value()) << AxisToString(axis);
    EXPECT_EQ(*parsed, axis);
  }
  EXPECT_FALSE(AxisFromString("namespace").has_value());
  EXPECT_FALSE(AxisFromString("sideways").has_value());
}

TEST(AxisTest, ReverseAxes) {
  EXPECT_TRUE(AxisIsReverse(Axis::kParent));
  EXPECT_TRUE(AxisIsReverse(Axis::kAncestor));
  EXPECT_TRUE(AxisIsReverse(Axis::kAncestorOrSelf));
  EXPECT_TRUE(AxisIsReverse(Axis::kPreceding));
  EXPECT_TRUE(AxisIsReverse(Axis::kPrecedingSibling));
  EXPECT_FALSE(AxisIsReverse(Axis::kSelf));
  EXPECT_FALSE(AxisIsReverse(Axis::kChild));
  EXPECT_FALSE(AxisIsReverse(Axis::kDescendant));
  EXPECT_FALSE(AxisIsReverse(Axis::kFollowing));
  EXPECT_FALSE(AxisIsReverse(Axis::kFollowingSibling));
}

// --- Axis semantics on the paper document ------------------------------------

class AxisSemanticsTest : public testing::Test {
 protected:
  AxisSemanticsTest() : doc_(xml::MakePaperDocument()) {}

  NodeId X(const std::string& id) const {
    return *doc_.GetElementById(id);
  }

  /// Elements of χ({origin}) as id strings, in document order.
  std::vector<std::string> Ids(Axis axis, NodeId origin) const {
    std::vector<std::string> out;
    for (NodeId n : AxisFromNode(doc_, axis, origin)) {
      if (doc_.IsElement(n)) {
        out.push_back(std::string(*doc_.Attribute(n, "id")));
      }
    }
    return out;
  }

  Document doc_;
};

TEST_F(AxisSemanticsTest, Child) {
  EXPECT_EQ(Ids(Axis::kChild, X("10")),
            (std::vector<std::string>{"11", "21"}));
  EXPECT_EQ(Ids(Axis::kChild, X("11")),
            (std::vector<std::string>{"12", "13", "14"}));
  EXPECT_TRUE(Ids(Axis::kChild, X("12")).empty());  // only a text child
}

TEST_F(AxisSemanticsTest, Parent) {
  EXPECT_EQ(Ids(Axis::kParent, X("12")), (std::vector<std::string>{"11"}));
  EXPECT_EQ(AxisFromNode(doc_, Axis::kParent, X("10")),
            NodeSet::Single(doc_.root()));
  EXPECT_TRUE(AxisFromNode(doc_, Axis::kParent, doc_.root()).empty());
}

TEST_F(AxisSemanticsTest, DescendantFromX10) {
  EXPECT_EQ(Ids(Axis::kDescendant, X("10")),
            (std::vector<std::string>{"11", "12", "13", "14", "21", "22",
                                      "23", "24"}));
}

TEST_F(AxisSemanticsTest, DescendantExcludesAttributesAndSelf) {
  NodeSet d = AxisFromNode(doc_, Axis::kDescendant, X("11"));
  EXPECT_FALSE(d.Contains(X("11")));
  for (NodeId n : d) {
    EXPECT_NE(doc_.kind(n), NodeKind::kAttribute);
  }
  // But it does include text nodes.
  bool has_text = false;
  for (NodeId n : d) has_text = has_text || doc_.IsText(n);
  EXPECT_TRUE(has_text);
}

TEST_F(AxisSemanticsTest, Ancestor) {
  EXPECT_EQ(Ids(Axis::kAncestor, X("12")),
            (std::vector<std::string>{"10", "11"}));
  NodeSet a = AxisFromNode(doc_, Axis::kAncestor, X("12"));
  EXPECT_TRUE(a.Contains(doc_.root()));
}

TEST_F(AxisSemanticsTest, AncestorOfAttributeIncludesOwner) {
  NodeId attr = doc_.AttrBegin(X("12"));
  NodeSet a = AxisFromNode(doc_, Axis::kAncestorOrSelf, attr);
  EXPECT_TRUE(a.Contains(attr));
  EXPECT_TRUE(a.Contains(X("12")));
  EXPECT_TRUE(a.Contains(X("11")));
  EXPECT_TRUE(a.Contains(X("10")));
}

TEST_F(AxisSemanticsTest, FollowingFromX14) {
  // Paper Example 9: following(x14) = {x21, x22, x23, x24}.
  EXPECT_EQ(Ids(Axis::kFollowing, X("14")),
            (std::vector<std::string>{"21", "22", "23", "24"}));
}

TEST_F(AxisSemanticsTest, PrecedingFromX23) {
  // Example 9: preceding(x23) = {x11, x12, x13, x14, x22} (elements).
  EXPECT_EQ(Ids(Axis::kPreceding, X("23")),
            (std::vector<std::string>{"11", "12", "13", "14", "22"}));
}

TEST_F(AxisSemanticsTest, PrecedingExcludesAncestors) {
  NodeSet p = AxisFromNode(doc_, Axis::kPreceding, X("23"));
  EXPECT_FALSE(p.Contains(X("21")));  // parent
  EXPECT_FALSE(p.Contains(X("10")));  // grandparent
  EXPECT_FALSE(p.Contains(doc_.root()));
}

TEST_F(AxisSemanticsTest, Siblings) {
  EXPECT_EQ(Ids(Axis::kFollowingSibling, X("12")),
            (std::vector<std::string>{"13", "14"}));
  EXPECT_EQ(Ids(Axis::kPrecedingSibling, X("14")),
            (std::vector<std::string>{"12", "13"}));
  EXPECT_TRUE(Ids(Axis::kFollowingSibling, X("24")).empty());
  // Attributes have no siblings.
  EXPECT_TRUE(
      AxisFromNode(doc_, Axis::kFollowingSibling, doc_.AttrBegin(X("11")))
          .empty());
}

TEST_F(AxisSemanticsTest, SelfAndOrSelfVariants) {
  EXPECT_EQ(AxisFromNode(doc_, Axis::kSelf, X("13")),
            NodeSet::Single(X("13")));
  NodeSet dos = AxisFromNode(doc_, Axis::kDescendantOrSelf, X("21"));
  EXPECT_TRUE(dos.Contains(X("21")));
  EXPECT_TRUE(dos.Contains(X("24")));
  NodeSet aos = AxisFromNode(doc_, Axis::kAncestorOrSelf, X("21"));
  EXPECT_TRUE(aos.Contains(X("21")));
  EXPECT_TRUE(aos.Contains(X("10")));
}

TEST_F(AxisSemanticsTest, AttributeAxis) {
  NodeSet attrs = AxisFromNode(doc_, Axis::kAttribute, X("13"));
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(doc_.content(attrs.First()), "13");
  // Attribute axis from a non-element is empty.
  EXPECT_TRUE(AxisFromNode(doc_, Axis::kAttribute, doc_.root()).empty());
}

TEST_F(AxisSemanticsTest, IdAxis) {
  // strval(x12) = "21 22" → {x21, x22}.
  NodeSet targets = AxisFromNode(doc_, Axis::kId, X("12"));
  EXPECT_EQ(targets, NodeSet({X("21"), X("22")}));
  // Inverse: following⁻¹-style lookup through Definition 1.
  NodeSet sources = EvalAxisInverse(doc_, Axis::kId, NodeSet::Single(X("21")));
  EXPECT_TRUE(sources.Contains(X("12")));
}

TEST_F(AxisSemanticsTest, MultiOriginUnionSemantics) {
  // χ(X) = ∪ χ({x}) per Definition 1.
  NodeSet x({X("12"), X("22")});
  NodeSet joint = EvalAxis(doc_, Axis::kFollowingSibling, x);
  NodeSet split = AxisFromNode(doc_, Axis::kFollowingSibling, X("12"))
                      .Union(AxisFromNode(doc_, Axis::kFollowingSibling,
                                          X("22")));
  EXPECT_EQ(joint, split);
}

TEST_F(AxisSemanticsTest, EmptyInputGivesEmptyOutput) {
  for (int i = 0; i < kNumAxes; ++i) {
    Axis axis = static_cast<Axis>(i);
    EXPECT_TRUE(EvalAxis(doc_, axis, NodeSet()).empty()) << AxisToString(axis);
    EXPECT_TRUE(EvalAxisInverse(doc_, axis, NodeSet()).empty())
        << AxisToString(axis);
  }
}

// --- Properties checked on randomized documents ------------------------------

class AxisPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  AxisPropertyTest()
      : doc_(xml::MakeRandomDocument(40, {"a", "b", "c"}, GetParam())) {}

  Document doc_;
};

TEST_P(AxisPropertyTest, PartitionOfDocument) {
  // For every non-attribute node x: self ∪ ancestor ∪ descendant ∪
  // preceding ∪ following = all non-attribute nodes, pairwise disjoint.
  for (NodeId x = 0; x < doc_.size(); ++x) {
    if (doc_.IsAttribute(x)) continue;
    NodeSet parts[5] = {
        AxisFromNode(doc_, Axis::kSelf, x),
        AxisFromNode(doc_, Axis::kAncestor, x),
        AxisFromNode(doc_, Axis::kDescendant, x),
        AxisFromNode(doc_, Axis::kPreceding, x),
        AxisFromNode(doc_, Axis::kFollowing, x),
    };
    size_t total = 0;
    NodeSet all;
    for (const NodeSet& p : parts) {
      total += p.size();
      all = all.Union(p);
    }
    EXPECT_EQ(total, all.size()) << "overlap for node " << x;
    size_t non_attr = 0;
    for (NodeId n = 0; n < doc_.size(); ++n) {
      if (!doc_.IsAttribute(n)) ++non_attr;
    }
    EXPECT_EQ(all.size(), non_attr) << "gap for node " << x;
  }
}

TEST_P(AxisPropertyTest, InverseMatchesDefinition1) {
  // χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅}, checked exhaustively per axis.
  const NodeSet y({doc_.size() / 3, doc_.size() / 2,
                   static_cast<NodeId>(doc_.size() - 1)});
  for (int i = 0; i < kNumAxes; ++i) {
    Axis axis = static_cast<Axis>(i);
    NodeSet fast = EvalAxisInverse(doc_, axis, y);
    NodeSet slow;
    for (NodeId x = 0; x < doc_.size(); ++x) {
      if (!AxisFromNode(doc_, axis, x).Intersect(y).empty()) {
        slow.PushBackOrdered(x);
      }
    }
    EXPECT_EQ(fast, slow) << AxisToString(axis);
  }
}

TEST_P(AxisPropertyTest, RelatesAgreesWithAxisFunction) {
  // AxisRelates(x, y) ⟺ y ∈ χ({x}).
  for (int i = 0; i < kNumAxes; ++i) {
    Axis axis = static_cast<Axis>(i);
    for (NodeId x = 0; x < doc_.size(); x += 3) {
      NodeSet image = AxisFromNode(doc_, axis, x);
      for (NodeId yn = 0; yn < doc_.size(); ++yn) {
        EXPECT_EQ(AxisRelates(doc_, axis, x, yn), image.Contains(yn))
            << AxisToString(axis) << " x=" << x << " y=" << yn;
      }
    }
  }
}

TEST_P(AxisPropertyTest, SymmetryPairs) {
  // y ∈ following(x) ⟺ x ∈ preceding(y), and the same for the other
  // symmetric pairs, over non-attribute nodes.
  struct Pair {
    Axis fwd, bwd;
  };
  for (Pair p : {Pair{Axis::kChild, Axis::kParent},
                 Pair{Axis::kDescendant, Axis::kAncestor},
                 Pair{Axis::kFollowing, Axis::kPreceding},
                 Pair{Axis::kFollowingSibling, Axis::kPrecedingSibling}}) {
    for (NodeId x = 0; x < doc_.size(); x += 2) {
      if (doc_.IsAttribute(x)) continue;
      for (NodeId y : AxisFromNode(doc_, p.fwd, x)) {
        EXPECT_TRUE(AxisRelates(doc_, p.bwd, y, x))
            << AxisToString(p.fwd) << " x=" << x << " y=" << y;
      }
    }
  }
}

TEST_P(AxisPropertyTest, DescendantIsTransitiveChild) {
  // descendant = child⁺, verified by fixpoint iteration from each node.
  for (NodeId x = 0; x < doc_.size(); x += 5) {
    NodeSet expect;
    NodeSet frontier = AxisFromNode(doc_, Axis::kChild, x);
    while (!frontier.empty()) {
      expect = expect.Union(frontier);
      frontier = EvalAxis(doc_, Axis::kChild, frontier);
    }
    EXPECT_EQ(AxisFromNode(doc_, Axis::kDescendant, x), expect) << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxisPropertyTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace xpe
