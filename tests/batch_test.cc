// The xpe::batch concurrency contract: a shared PlanCache in front of a
// fixed pool of per-worker Evaluator sessions, evaluating N queries × M
// shared read-only documents concurrently with deterministic, item-order
// results and race-free aggregated stats. The threaded cases here are
// the ones the TSan CI job exists for: any unsynchronized access on the
// shared read path (Document lazy caches, shared plans, result slots)
// fails there even if the values happen to come out right.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/xml/generator.h"
#include "tests/test_util.h"

namespace xpe {
namespace {

using batch::BatchEvaluator;
using batch::BatchItem;
using batch::BatchOptions;
using batch::BatchResult;
using batch::PlanCache;
using batch::SharedPlan;
using test::MustCompile;
using test::MustParse;

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(8);
  bool hit = true;
  StatusOr<SharedPlan> first = cache.GetOrCompile("//a", &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);
  StatusOr<SharedPlan> second = cache.GetOrCompile("//a", &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), second->get()) << "hit must return the same plan";
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCacheTest, CanonicalKeySharesOnePlanAcrossSpellings) {
  // All three spell the same normalized query; the canonical level must
  // collapse them onto one plan object under distinct source keys.
  PlanCache cache(8);
  SharedPlan abbreviated = *cache.GetOrCompile("//a[2]");
  SharedPlan spaced = *cache.GetOrCompile("  //a[ 2 ]");
  SharedPlan unabbreviated = *cache.GetOrCompile(
      "/descendant-or-self::node()/child::a[position() = 2]");
  EXPECT_EQ(abbreviated.get(), spaced.get());
  EXPECT_EQ(abbreviated.get(), unabbreviated.get());
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u) << "three source aliases";
  EXPECT_EQ(stats.canonical_shares, 2u) << "two spellings adopted plan #1";
}

TEST(PlanCacheTest, CanonicalKeyIsTheNormalizedRendering) {
  const xpath::CompiledQuery a = MustCompile("//a[2]");
  const xpath::CompiledQuery b =
      MustCompile("/descendant-or-self::node()/child::a[position() = 2]");
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  EXPECT_EQ(a.canonical_key(), a.tree().ToString());
  EXPECT_NE(a.source(), b.source());
}

TEST(PlanCacheTest, BindingsDistinguishCanonicalKeys) {
  // Bindings are substituted by the normalizer, so the same text under
  // different bindings has different canonical keys (and caches must be
  // per-binding-environment, which PlanCache enforces by construction).
  xpath::CompileOptions opt1;
  opt1.bindings["x"] = xpath::ScalarBinding::Number(1);
  xpath::CompileOptions opt2;
  opt2.bindings["x"] = xpath::ScalarBinding::Number(2);
  const xpath::CompiledQuery q1 = MustCompile("//a[$x]", opt1);
  const xpath::CompiledQuery q2 = MustCompile("//a[$x]", opt2);
  EXPECT_NE(q1.canonical_key(), q2.canonical_key());
}

TEST(PlanCacheTest, LruEvictionBoundsEntries) {
  PlanCache cache(2);
  ASSERT_TRUE(cache.GetOrCompile("//a").ok());
  ASSERT_TRUE(cache.GetOrCompile("//b").ok());
  ASSERT_TRUE(cache.GetOrCompile("//a").ok());  // touch //a
  ASSERT_TRUE(cache.GetOrCompile("//c").ok());  // evicts //b (LRU)
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  bool hit = false;
  ASSERT_TRUE(cache.GetOrCompile("//a", &hit).ok());
  EXPECT_TRUE(hit) << "//a was touched, must have survived";
  ASSERT_TRUE(cache.GetOrCompile("//b", &hit).ok());
  EXPECT_FALSE(hit) << "//b was the LRU victim";
}

TEST(PlanCacheTest, CompileErrorsAreReturnedAndNotCached) {
  PlanCache cache(8);
  StatusOr<SharedPlan> bad = cache.GetOrCompile("//a[");
  ASSERT_FALSE(bad.ok());
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.failures, 1u);
  // Still an error the second time (and not a stale cache hit).
  bool hit = true;
  StatusOr<SharedPlan> again = cache.GetOrCompile("//a[", &hit);
  EXPECT_FALSE(again.ok());
  EXPECT_FALSE(hit);
}

TEST(PlanCacheTest, EvictedPlanSurvivesForInFlightHolders) {
  PlanCache cache(1);
  SharedPlan held = *cache.GetOrCompile("//a");
  ASSERT_TRUE(cache.GetOrCompile("//b").ok());  // evicts //a
  EXPECT_EQ(cache.stats().entries, 1u);
  // The held plan is still fully usable after eviction.
  const xml::Document doc = MustParse("<r><a/><a/></r>");
  StatusOr<NodeSet> result = EvaluateNodeSet(*held, doc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(PlanCacheTest, CanonicalLevelStaysBoundedUnderChurn) {
  // A stream of never-repeating queries through a tiny cache: the
  // source level is LRU-capped, and the canonical dedup level must not
  // grow without bound either (expired entries are swept).
  PlanCache cache(2);
  for (int i = 0; i < 200; ++i) {
    const std::string q = "//a[" + std::to_string(i + 1) + "]";
    ASSERT_TRUE(cache.GetOrCompile(q).ok());
  }
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.canonical_entries, stats.entries + cache.capacity());
}

TEST(PlanCacheTest, ConcurrentGetOrCompileConvergesOnOnePlan) {
  // Many threads race first-touch compiles of a small query set; every
  // thread must end with a working plan and the cache must stay
  // consistent. (TSan checks the synchronization, asserts the values.)
  PlanCache cache(64);
  constexpr int kThreads = 8;
  const char* queries[] = {"//a", "//b", "//a/b", "count(//a)", "//a[2]"};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        for (const char* q : queries) {
          StatusOr<SharedPlan> plan = cache.GetOrCompile(q);
          if (!plan.ok() || *plan == nullptr) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Racing compiles may briefly produce duplicate plan objects, but the
  // cache itself converges on one entry per query.
  EXPECT_EQ(cache.stats().entries, 5u);
  for (const char* q : queries) {
    EXPECT_NE(cache.Lookup(q), nullptr) << q;
  }
}

// ---------------------------------------------------------------------------
// BatchEvaluator
// ---------------------------------------------------------------------------

/// Sequential reference: the free one-shot Evaluate over the same items.
std::vector<Value> SequentialReference(const std::vector<BatchItem>& items,
                                       const EvalOptions& options) {
  std::vector<Value> out;
  out.reserve(items.size());
  for (const BatchItem& item : items) {
    xpath::CompiledQuery q = MustCompile(item.query);
    StatusOr<Value> v = Evaluate(q, *item.doc, item.context, options);
    EXPECT_TRUE(v.ok()) << item.query << ": " << v.status().ToString();
    out.push_back(v.ok() ? std::move(v).value() : Value());
  }
  return out;
}

std::vector<BatchItem> MixedWorkload(
    const std::vector<const xml::Document*>& docs) {
  const char* queries[] = {
      "//a",
      "//a/b",
      "//b[last()]",
      "//a[b and c]",
      "count(//a)",
      "//a[position() mod 2 = 0]",
      "//c/following-sibling::*",
      "sum(//b) + count(//c)",
      "//*[@id]",
      "//a | //c",
  };
  std::vector<BatchItem> items;
  for (int round = 0; round < 3; ++round) {
    for (const xml::Document* doc : docs) {
      for (const char* q : queries) {
        items.push_back(BatchItem{q, doc, EvalContext{}});
      }
    }
  }
  return items;
}

TEST(BatchEvaluatorTest, MatchesSequentialReferenceInItemOrder) {
  const xml::Document doc_a = xml::MakeRandomDocument(40, {"a", "b", "c"}, 7);
  const xml::Document doc_b = xml::MakeRandomDocument(25, {"a", "b", "c"}, 99);
  const std::vector<BatchItem> items = MixedWorkload({&doc_a, &doc_b});

  for (int workers : {1, 2, 4, 8}) {
    BatchOptions options;
    options.workers = workers;
    BatchEvaluator pool(options);
    ASSERT_EQ(pool.workers(), workers);
    const std::vector<BatchResult> results = pool.EvaluateAll(items);
    const std::vector<Value> expected =
        SequentialReference(items, options.eval);
    ASSERT_EQ(results.size(), items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      ASSERT_TRUE(results[i].value.ok())
          << "workers=" << workers << " item " << i << " (" << items[i].query
          << "): " << results[i].value.status().ToString();
      EXPECT_TRUE(results[i].value->StructurallyEquals(expected[i]))
          << "workers=" << workers << " item " << i << " (" << items[i].query
          << ")\nexpected " << expected[i].Repr() << "\nactual "
          << results[i].value->Repr();
    }
  }
}

TEST(BatchEvaluatorTest, DeterministicAcrossRepeatedRuns) {
  const xml::Document doc = xml::MakeRandomDocument(35, {"a", "b", "c"}, 3);
  const std::vector<BatchItem> items = MixedWorkload({&doc});
  BatchOptions options;
  options.workers = 4;
  BatchEvaluator pool(options);
  const std::vector<BatchResult> first = pool.EvaluateAll(items);
  for (int run = 0; run < 5; ++run) {
    const std::vector<BatchResult> again = pool.EvaluateAll(items);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      ASSERT_TRUE(again[i].value.ok());
      EXPECT_TRUE(again[i].value->StructurallyEquals(*first[i].value))
          << "run " << run << " item " << i;
    }
  }
}

TEST(BatchEvaluatorTest, PerItemErrorsDoNotPoisonTheBatch) {
  const xml::Document doc = MustParse("<r><a/><a/></r>");
  std::vector<BatchItem> items = {
      {"//a", &doc, {}},
      {"//a[", &doc, {}},    // syntax error
      {"count(//a)", &doc, {}},
      {"//a", nullptr, {}},  // null document
  };
  BatchOptions options;
  options.workers = 2;
  BatchEvaluator pool(options);
  const std::vector<BatchResult> results = pool.EvaluateAll(items);
  ASSERT_EQ(results.size(), 4u);
  ASSERT_TRUE(results[0].value.ok());
  EXPECT_EQ(results[0].value->node_set().size(), 2u);
  EXPECT_FALSE(results[1].value.ok());
  EXPECT_EQ(results[1].value.status().code(), StatusCode::kParseError);
  ASSERT_TRUE(results[2].value.ok());
  EXPECT_EQ(results[2].value->number(), 2.0);
  EXPECT_FALSE(results[3].value.ok());
  EXPECT_EQ(results[3].value.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.last_batch_stats().errors, 2u);
}

TEST(BatchEvaluatorTest, StatsAggregateAcrossWorkersAndCacheWarms) {
  const xml::Document doc = xml::MakeRandomDocument(30, {"a", "b", "c"}, 11);
  const std::vector<BatchItem> items = MixedWorkload({&doc});
  BatchOptions options;
  options.workers = 4;
  BatchEvaluator pool(options);

  pool.EvaluateAll(items);
  const batch::BatchStats cold = pool.last_batch_stats();
  EXPECT_EQ(cold.items, items.size());
  EXPECT_EQ(cold.errors, 0u);
  EXPECT_EQ(cold.plan_cache_hits + cold.plan_cache_misses, items.size());
  EXPECT_GT(cold.eval.contexts_evaluated, 0u);

  pool.EvaluateAll(items);
  const batch::BatchStats warm = pool.last_batch_stats();
  EXPECT_EQ(warm.plan_cache_misses, 0u) << "second batch must be fully warm";
  EXPECT_EQ(warm.plan_cache_hits, items.size());
}

TEST(BatchEvaluatorTest, AllEnginesRunUnderTheBatch) {
  const xml::Document doc = xml::MakeRandomDocument(20, {"a", "b", "c"}, 5);
  for (EngineKind engine :
       {EngineKind::kBottomUp, EngineKind::kTopDown, EngineKind::kMinContext,
        EngineKind::kOptMinContext}) {
    std::vector<BatchItem> items;
    for (int i = 0; i < 12; ++i) items.push_back({"//a[b]/b", &doc, {}});
    BatchOptions options;
    options.workers = 3;
    options.eval.engine = engine;
    BatchEvaluator pool(options);
    const std::vector<BatchResult> results = pool.EvaluateAll(items);
    xpath::CompiledQuery q = MustCompile("//a[b]/b");
    EvalOptions ref_opts;
    ref_opts.engine = engine;
    StatusOr<Value> expected = Evaluate(q, doc, EvalContext{}, ref_opts);
    ASSERT_TRUE(expected.ok());
    for (const BatchResult& r : results) {
      ASSERT_TRUE(r.value.ok()) << EngineKindToString(engine);
      EXPECT_TRUE(r.value->StructurallyEquals(*expected))
          << EngineKindToString(engine);
    }
  }
}

TEST(BatchEvaluatorTest, EmptyBatchAndReuseAfterIt) {
  const xml::Document doc = MustParse("<r><a/></r>");
  BatchOptions options;
  options.workers = 2;
  BatchEvaluator pool(options);
  EXPECT_TRUE(pool.EvaluateAll({}).empty());
  const std::vector<BatchResult> results =
      pool.EvaluateAll({{"//a", &doc, {}}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].value.ok());
}

TEST(BatchEvaluatorTest, NonRootContextsAreHonored) {
  const xml::Document doc =
      MustParse("<r><a id='1'><b/></a><a id='2'><b/><b/></a></r>");
  // Context node: each <a> in turn, query relative to it.
  std::vector<BatchItem> items;
  for (xml::NodeId n = 0; n < doc.size(); ++n) {
    if (doc.IsElement(n) && doc.name(n) == "a") {
      EvalContext ctx;
      ctx.node = n;
      items.push_back({"count(b)", &doc, ctx});
    }
  }
  ASSERT_EQ(items.size(), 2u);
  BatchOptions options;
  options.workers = 2;
  BatchEvaluator pool(options);
  const std::vector<BatchResult> results = pool.EvaluateAll(items);
  ASSERT_TRUE(results[0].value.ok());
  ASSERT_TRUE(results[1].value.ok());
  EXPECT_EQ(results[0].value->number(), 1.0);
  EXPECT_EQ(results[1].value->number(), 2.0);
}

// ---------------------------------------------------------------------------
// Shared-document contention (the TSan cases)
// ---------------------------------------------------------------------------

TEST(SharedDocumentContentionTest, FirstTouchIndexBuildUnderContention) {
  // A *fresh* document per round: all threads race the lazy index /
  // id-axis / number-cache builds on first touch.
  for (int round = 0; round < 5; ++round) {
    const xml::Document doc =
        xml::MakeRandomDocument(60, {"a", "b", "c"}, 1000 + round);
    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        const index::DocumentIndex& idx = doc.index();  // racing first touch
        if (idx.size() != doc.size()) failures.fetch_add(1);
        if (doc.IdAxisForward(0).size() > doc.size()) failures.fetch_add(1);
        xpath::CompiledQuery q = MustCompile("//a[. = 100]/b");
        Evaluator session;
        StatusOr<Value> v = session.Evaluate(q, doc, EvalContext{}, {});
        if (!v.ok()) failures.fetch_add(1);
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
  }
}

TEST(SharedDocumentContentionTest, WarmCachesIsIdempotentAndComplete) {
  const xml::Document doc = xml::MakeRandomDocument(40, {"a", "b", "c"}, 77);
  doc.WarmCaches();
  doc.WarmCaches();  // idempotent
  // After warming, evaluation answers match an unwarmed document's.
  const xml::Document cold = xml::MakeRandomDocument(40, {"a", "b", "c"}, 77);
  for (const char* q : {"//a[b]", "id(//a)", "//*[. = 100]"}) {
    xpath::CompiledQuery compiled = MustCompile(q);
    StatusOr<Value> warm_v = Evaluate(compiled, doc, EvalContext{}, {});
    StatusOr<Value> cold_v = Evaluate(compiled, cold, EvalContext{}, {});
    ASSERT_TRUE(warm_v.ok());
    ASSERT_TRUE(cold_v.ok());
    EXPECT_TRUE(warm_v->StructurallyEquals(*cold_v)) << q;
  }
}

TEST(SharedDocumentContentionTest, ColdDocumentsThroughTheBatchPool) {
  // warm_documents=false: the pool's workers themselves race first
  // touch on each document's lazy caches mid-evaluation.
  const xml::Document doc_a = xml::MakeRandomDocument(50, {"a", "b", "c"}, 21);
  const xml::Document doc_b = xml::MakeAuctionDocument(6, 21);
  std::vector<BatchItem> items;
  for (int i = 0; i < 16; ++i) {
    items.push_back({"//a[. = 100]", &doc_a, {}});
    items.push_back({"id(//itemref)/name", &doc_b, {}});
  }
  BatchOptions options;
  options.workers = 8;
  options.warm_documents = false;
  BatchEvaluator pool(options);
  const std::vector<BatchResult> results = pool.EvaluateAll(items);
  const std::vector<Value> expected = SequentialReference(items, options.eval);
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(results[i].value.ok()) << i;
    EXPECT_TRUE(results[i].value->StructurallyEquals(expected[i])) << i;
  }
}

TEST(SharedDocumentContentionTest, ConcurrentBatchesOnSeparatePools) {
  // Two pools over the same documents from two client threads: the
  // documents and plans are shared across pools, sessions are not.
  const xml::Document doc = xml::MakeRandomDocument(40, {"a", "b", "c"}, 13);
  const std::vector<BatchItem> items = MixedWorkload({&doc});
  const std::vector<Value> expected = SequentialReference(items, {});
  auto run_pool = [&](std::atomic<int>* failures) {
    BatchOptions options;
    options.workers = 3;
    BatchEvaluator pool(options);
    const std::vector<BatchResult> results = pool.EvaluateAll(items);
    for (size_t i = 0; i < items.size(); ++i) {
      if (!results[i].value.ok() ||
          !results[i].value->StructurallyEquals(expected[i])) {
        failures->fetch_add(1);
      }
    }
  };
  std::atomic<int> failures{0};
  std::thread one([&] { run_pool(&failures); });
  std::thread two([&] { run_pool(&failures); });
  one.join();
  two.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xpe
