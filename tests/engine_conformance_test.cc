// Cross-engine conformance: a corpus of queries with golden results,
// evaluated by *every* engine (naive, E↑, E↓, MINCONTEXT, OPTMINCONTEXT —
// plus the Core XPath engine where applicable). A disagreement between
// engines here means one of the five implementations diverged from the
// shared semantics; this suite is the library's strongest safety net.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xpe {
namespace {

using test::ConformanceEngines;
using test::MustCompile;
using test::MustParse;

/// One conformance case: query + expected ids (on the fixture document).
struct Case {
  const char* query;
  const char* expected;  // space-separated id attributes
};

/// The fixture document: rich enough to exercise every axis, node kind,
/// positions, ids and values.
const char* kFixtureXml = R"(<r id="r">
<chap id="c1"><sec id="s11"><p id="p1">alpha</p><p id="p2">beta</p></sec>
<sec id="s12"><p id="p3">100</p><note id="n1">see p1 p3</note></sec></chap>
<chap id="c2"><sec id="s21"><p id="p4">gamma</p><p id="p5">100</p>
<p id="p6">delta</p></sec></chap>
<appendix id="x"><p id="p7">omega</p></appendix>
</r>)";

class ConformanceTest
    : public testing::TestWithParam<std::tuple<EngineKind, Case>> {
 protected:
  static void SetUpTestSuite() {
    xml::ParseOptions options;
    options.whitespace = xml::WhitespaceMode::kDiscard;
    doc_ = new xml::Document(MustParse(kFixtureXml, options));
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }

  static xml::Document* doc_;
};

xml::Document* ConformanceTest::doc_ = nullptr;

std::vector<std::string> Split(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    size_t j = s.find(' ', i);
    if (j == std::string::npos) j = s.size();
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j + 1;
  }
  return out;
}

TEST_P(ConformanceTest, MatchesGolden) {
  const auto& [engine, c] = GetParam();
  xpath::CompiledQuery compiled = MustCompile(c.query);
  std::vector<std::string> ids = test::EvalIds(compiled, *doc_, engine);
  EXPECT_EQ(ids, Split(c.expected)) << c.query;
  // Where the query is Core XPath, the linear engine must agree too.
  if (compiled.fragment() == xpath::Fragment::kCoreXPath) {
    EXPECT_EQ(test::EvalIds(compiled, *doc_, EngineKind::kCoreXPath),
              Split(c.expected))
        << c.query << " (corexpath)";
  }
}

const Case kCases[] = {
    // Simple paths and node tests.
    {"/r", "r"},
    {"/child::r/child::chap", "c1 c2"},
    {"//p", "p1 p2 p3 p4 p5 p6 p7"},
    {"//sec/p", "p1 p2 p3 p4 p5 p6"},
    {"/r/appendix/p", "p7"},
    {"//nothing", ""},
    {"//chap//p", "p1 p2 p3 p4 p5 p6"},
    {"/", "#0"},  // the document node itself (it has no id attribute)
    // Axes.
    {"//p[. = 'beta']/parent::sec", "s11"},
    {"//sec/ancestor::chap", "c1 c2"},
    {"//note/ancestor-or-self::*", "r c1 s12 n1"},
    {"//p[. = 100]/following-sibling::*", "n1 p6"},
    {"//p[. = 'delta']/preceding-sibling::p", "p4 p5"},
    {"//note/following::p", "p4 p5 p6 p7"},
    {"//p[. = 'gamma']/preceding::p", "p1 p2 p3"},
    {"//sec[2]/self::sec", "s12"},
    {"//p/..", "s11 s12 s21 x"},
    {"//descendant-or-self::appendix", "x"},
    // Attributes.
    {"//chap[@id = 'c2']", "c2"},
    {"//*[@id = 'p3']", "p3"},
    {"//sec[@id]", "s11 s12 s21"},
    {"//p[attribute::id = 'p7']", "p7"},
    // Positions.
    {"//p[1]", "p1 p3 p4 p7"},  // first p within each parent
    {"//p[last()]", "p2 p3 p6 p7"},
    {"//p[position() = 2]", "p2 p5"},
    {"//p[position() > 1]", "p2 p5 p6"},
    {"//sec/p[position() = last()]", "p2 p3 p6"},
    {"(//p)[1]", "p1"},          // filter: global first
    {"(//p)[last()]", "p7"},
    {"(//p)[position() > 4]", "p5 p6 p7"},
    {"//p[position() = 1 or position() = last()]", "p1 p2 p3 p4 p6 p7"},
    // Value predicates.
    {"//p[. = 100]", "p3 p5"},
    {"//p[. = 'alpha']", "p1"},
    {"//p[number(.) > 99]", "p3 p5"},
    {"//sec[p = 100]", "s12 s21"},
    {"//sec[count(p) > 2]", "s21"},
    {"//sec[count(p) = 2]", "s11"},
    {"//chap[sec/p = 'beta']", "c1"},
    // Boolean connectives.
    {"//sec[p and note]", "s12"},
    {"//sec[p or note]", "s11 s12 s21"},
    {"//sec[not(note)]", "s11 s21"},
    {"//p[starts-with(., 'a')]", "p1"},
    {"//p[contains(., 'mm')]", "p4"},
    {"//p[string-length(.) = 5]", "p1 p4 p6 p7"},
    // Unions.
    {"//note | //appendix", "n1 x"},
    {"//p[. = 100] | //note | /r", "r p3 n1 p5"},
    {"//sec[p | note]", "s11 s12 s21"},
    // id().
    {"id('p1')", "p1"},
    {"id('p3 p1')", "p1 p3"},
    {"id(//note)", "p1 p3"},  // note's strval is "see p1 p3"; "see" misses
    {"id(//note)/parent::sec", "s11 s12"},
    {"id('s21')/p[2]", "p5"},
    // Arithmetic & numbers in predicates.
    {"//p[position() + 1 = 3]", "p2 p5"},
    {"//p[position() mod 2 = 1]", "p1 p3 p4 p6 p7"},
    {"//sec[count(p) * 2 = 4]", "s11"},
    {"//p[position() = floor(last() div 2)]", "p1 p4"},
    // Mixed nested predicates.
    {"//chap[sec[p[. = 100]]]", "c1 c2"},
    {"//sec[p[2]]", "s11 s21"},
    {"//sec[p[position() = 2][. = 100]]", "s21"},
    {"//chap[.//note]/sec[1]", "s11"},
    {"//p[ancestor::chap[@id = 'c1']]", "p1 p2 p3"},
    {"//p[following::note]", "p1 p2 p3"},
    {"//p[boolean(following-sibling::p)]", "p1 p4 p5"},
    // Deeper Wadler-style forms (bottom-up eligible in OPTMINCONTEXT).
    {"//p[following-sibling::p = 100]", "p4"},
    {"//sec[boolean(p[position() != last()]/following-sibling::p)]",
     "s11 s21"},
    {"//*[preceding-sibling::*/preceding::* = 100]", "p5 p6 x"},
    // Text nodes.
    {"//p[text() = 'beta']", "p2"},
    {"//sec[p/text()]", "s11 s12 s21"},
    // Kind tests and the self axis.
    {"//p/self::p", "p1 p2 p3 p4 p5 p6 p7"},
    {"//p/self::note", ""},
    {"//node()[self::note]", "n1"},
    {"//sec/node()[last()]", "p2 n1 p6"},
    {"//*[self::chap or self::appendix]", "c1 c2 x"},
    // Attribute axis as a step and in values.
    {"//sec[@id = 's21']/p", "p4 p5 p6"},
    {"//p[@id != 'p1'][1]", "p2 p3 p4 p7"},
    {"//*[@id = 'x']/p", "p7"},
    // Filter heads inside larger paths.
    {"(//sec)[2]/p", "p3"},
    {"(//chap)[last()]/sec/p[last()]", "p6"},
    {"(//p[. = 100])[2]/following-sibling::*", "p6"},
    // Unions nested in predicates (distributed by the normalizer).
    {"//sec[p[. = 100] | note]", "s12 s21"},
    {"//sec[(p | note) = 100]", "s12 s21"},
    // id() chains (the §4 id-axis).
    {"id(id(//note))", ""},  // p1/p3 contents are not ids
    {"id('s11 s12')/p[1]", "p1 p3"},
    {"id('s11')/p | id('s21')/p", "p1 p2 p4 p5 p6"},
    // Arithmetic corners inside predicates.
    {"//p[position() * 2 > last()]", "p2 p3 p5 p6 p7"},
    {"//p[last() - position() < 1]", "p2 p3 p6 p7"},
    {"//p[position() div 2 = 1]", "p2 p5"},
    {"//p[-position() + 2 = 1]", "p1 p3 p4 p7"},
    // String functions in predicates.
    {"//p[substring(., 1, 1) = 'g']", "p4"},
    {"//p[substring-after(@id, 'p') = '6']", "p6"},
    {"//p[translate(., 'abg', 'xyg') = 'gxmmx']", "p4"},
    {"//p[concat(@id, '!') = 'p7!']", "p7"},
    {"//p[normalize-space(' x ') = 'x']", "p1 p2 p3 p4 p5 p6 p7"},
    // Booleans and numbers as predicates (via boolean()/position rules).
    {"//p[true()]", "p1 p2 p3 p4 p5 p6 p7"},
    {"//p[false()]", ""},
    {"//p[count(//chap)]", "p2 p5"},   // numeric → position() = 2
    {"//p[number(@id = 'p1') + 1]", "p3 p4 p7"},  // position() = 1 or 2 per node
    // Deeper axis mixes.
    {"//note/ancestor::*[last()]", "r"},
    {"//note/ancestor::*[1]", "s12"},
    {"//p[. = 'omega']/ancestor-or-self::*[2]", "x"},
    {"//sec/descendant-or-self::*[self::p][3]", "p6"},
    {"//p/following::p[1]", "p2 p3 p4 p5 p6 p7"},
    {"//p/preceding::p[last()]", "p1"},
    {"//chap/descendant::p[ancestor::sec[@id = 's21']]", "p4 p5 p6"},
};

INSTANTIATE_TEST_SUITE_P(
    Queries, ConformanceTest,
    testing::Combine(testing::ValuesIn(ConformanceEngines()),
                     testing::ValuesIn(kCases)),
    [](const testing::TestParamInfo<std::tuple<EngineKind, Case>>& info) {
      std::string name = EngineKindToString(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_q" + std::to_string(info.index % std::size(kCases));
    });

// --- Scalar results across engines -------------------------------------------

struct ScalarCase {
  const char* query;
  const char* expected;  // via Value::Repr()
};

class ScalarConformanceTest
    : public testing::TestWithParam<std::tuple<EngineKind, ScalarCase>> {};

TEST_P(ScalarConformanceTest, MatchesGolden) {
  const auto& [engine, c] = GetParam();
  xml::ParseOptions options;
  options.whitespace = xml::WhitespaceMode::kDiscard;
  xml::Document doc = MustParse(kFixtureXml, options);
  xpath::CompiledQuery compiled = MustCompile(c.query);
  EvalOptions eval;
  eval.engine = engine;
  StatusOr<Value> v = Evaluate(compiled, doc, EvalContext{}, eval);
  ASSERT_TRUE(v.ok()) << c.query << ": " << v.status().ToString();
  EXPECT_EQ(v->Repr(), c.expected) << c.query;
}

const ScalarCase kScalarCases[] = {
    {"count(//p)", "7"},
    {"count(//sec/p)", "6"},
    {"sum(//p[. = 100])", "200"},
    {"string(//p)", "\"alpha\""},
    {"string(//p[. = 100])", "\"100\""},
    {"concat(string(count(//chap)), '-', string(count(//sec)))", "\"2-3\""},
    {"boolean(//note)", "true"},
    {"boolean(//nope)", "false"},
    {"//p = 100", "true"},
    {"//p = 'zeta'", "false"},
    {"count(//p[ancestor::appendix])", "1"},
    {"count(//*)", "15"},
    {"count(//@id)", "15"},
    {"string(//note/@id)", "\"n1\""},
    {"number(//p[@id = 'p3'])", "100"},
    {"string-length(string(//p[. = 'beta']))", "4"},
    {"count(/r/chap[1]/sec[2]/node())", "2"},
    {"count(//text())", "8"},
};

INSTANTIATE_TEST_SUITE_P(
    Scalars, ScalarConformanceTest,
    testing::Combine(testing::ValuesIn(ConformanceEngines()),
                     testing::ValuesIn(kScalarCases)),
    [](const testing::TestParamInfo<std::tuple<EngineKind, ScalarCase>>&
           info) {
      std::string name = EngineKindToString(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" +
             std::to_string(info.index % std::size(kScalarCases));
    });

// --- Context-node-sensitive evaluation ----------------------------------------

TEST(RelativeContextTest, RelativePathsStartAtContextNode) {
  xml::ParseOptions options;
  options.whitespace = xml::WhitespaceMode::kDiscard;
  xml::Document doc = MustParse(kFixtureXml, options);
  xpath::CompiledQuery q = MustCompile("p[. = 100]");
  for (EngineKind engine : ConformanceEngines()) {
    EvalContext ctx;
    ctx.node = *doc.GetElementById("s21");
    EXPECT_EQ(test::EvalIds(q, doc, engine, ctx),
              std::vector<std::string>{"p5"})
        << EngineKindToString(engine);
  }
}

TEST(RelativeContextTest, DotRefersToContextNode) {
  xml::Document doc = MustParse("<a><b id=\"b1\">x</b></a>");
  xpath::CompiledQuery q = MustCompile(".");
  for (EngineKind engine : ConformanceEngines()) {
    EvalContext ctx;
    ctx.node = *doc.GetElementById("b1");
    EXPECT_EQ(test::EvalIds(q, doc, engine, ctx),
              std::vector<std::string>{"b1"})
        << EngineKindToString(engine);
  }
}

}  // namespace
}  // namespace xpe
