// The observability tier (src/obs/): metric primitives, the registry's
// concurrency contract (the TSan CI job runs this whole binary), the
// exporters' round-trip through instrumented subsystems, and — most
// load-bearing — the profiler differential: attaching a QueryProfile
// sink must not change any result or any EvalStats counter, across
// engines × index modes × result modes, and the profiler's per-step
// nodes_visited rows must sum to exactly EvalStats::nodes_visited.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace xpe {
namespace {

using obs::Histogram;
using obs::Registry;

// --- metric primitives ----------------------------------------------------

TEST(CounterTest, AddIncrementMaxWithReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.MaxWith(10);  // below: no-op
  EXPECT_EQ(c.value(), 42u);
  c.MaxWith(100);
  EXPECT_EQ(c.value(), 100u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, BucketsQuantilesAndMax) {
  Histogram h;
  // 98 fast observations, 2 slow ones: p50 lands in the fast bucket,
  // p99 in the slow one, and every quantile clamps to the observed max.
  for (int i = 0; i < 98; ++i) h.Record(3);
  h.Record(1000);
  h.Record(900);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 98u * 3 + 1900);
  EXPECT_EQ(h.max(), 1000u);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.p50, 3u);  // bucket [2,4): upper bound 3
  EXPECT_LE(s.p99, 1000u);
  EXPECT_GE(s.p99, 512u);  // inside the slow observations' bucket
  EXPECT_EQ(s.Quantile(1.0), 1000u);
  EXPECT_EQ(Histogram::Snapshot::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::Snapshot::BucketUpperBound(3), 7u);
}

TEST(HistogramTest, ZeroAndHugeValuesLandInEndBuckets) {
  Histogram h;
  h.Record(0);
  h.Record(~uint64_t{0});
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(s.Quantile(1.0), ~uint64_t{0});
}

TEST(HistogramTest, MergeIsBucketwise) {
  Histogram a, b;
  a.Record(5);
  b.Record(5);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 310u);
  EXPECT_EQ(a.max(), 300u);
  EXPECT_EQ(a.snapshot().buckets[3], 2u);  // two 5s in [4,8)
}

TEST(RegistryTest, StablePointersAndSortedSnapshot) {
  Registry r;
  obs::Counter* c1 = r.GetCounter("xpe_test_b");
  obs::Counter* c2 = r.GetCounter("xpe_test_b");
  EXPECT_EQ(c1, c2);  // same name resolves to the same metric forever
  r.GetCounter("xpe_test_a")->Add(7);
  c1->Add(1);
  r.GetHistogram("xpe_test_h")->Record(10);
  const Registry::MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "xpe_test_a");  // sorted by name
  EXPECT_EQ(snap.counters[0].second, 7u);
  EXPECT_EQ(snap.counters[1].first, "xpe_test_b");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  r.Reset();
  EXPECT_EQ(c1->value(), 0u);  // pointers stay valid across Reset
}

// The registry's whole concurrency contract in one test: concurrent
// registration (same and different names), concurrent updates through
// shared metric pointers, and concurrent snapshots. Run under TSan by
// the CI tsan job; any lock or ordering bug in the stripes is a report.
TEST(RegistryTest, ConcurrentHammer) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      const std::string own = "xpe_hammer_own_" + std::to_string(t);
      for (int i = 0; i < kOps; ++i) {
        r.GetCounter("xpe_hammer_shared")->Increment();
        r.GetCounter(own)->Increment();
        r.GetHistogram("xpe_hammer_lat_us")->Record(
            static_cast<uint64_t>(i % 97));
      }
    });
  }
  threads.emplace_back([&r] {
    for (int i = 0; i < 50; ++i) {
      const Registry::MetricsSnapshot snap = r.Snapshot();
      (void)obs::ToJson(r);
      (void)snap;
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(r.GetCounter("xpe_hammer_shared")->value(),
            static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(r.GetHistogram("xpe_hammer_lat_us")->count(),
            static_cast<uint64_t>(kThreads) * kOps);
}

// --- exporters ------------------------------------------------------------

TEST(ExportTest, JsonAndPrometheusRoundTripInstrumentedSubsystems) {
  // Two private registries fed by the real serve-tier subsystems: one
  // for a standalone PlanCache (counters + compile-time histogram), one
  // for a BatchEvaluator — whose *internal* PlanCache publishes into
  // the pool's registry, which is why the cache counts are kept apart.
  Registry cache_reg;
  batch::PlanCache cache(4, {}, &cache_reg);
  ASSERT_TRUE(cache.GetOrCompile("//a").ok());
  ASSERT_TRUE(cache.GetOrCompile("//a").ok());  // hit
  ASSERT_TRUE(cache.GetOrCompile("//b").ok());  // miss
  const std::string cache_json = obs::ToJson(cache_reg);
  EXPECT_NE(cache_json.find("\"xpe_plan_cache_hits_total\": 1"),
            std::string::npos)
      << cache_json;
  EXPECT_NE(cache_json.find("\"xpe_plan_cache_misses_total\": 2"),
            std::string::npos)
      << cache_json;
  EXPECT_NE(cache_json.find("\"xpe_plan_cache_compile_us\": {\"count\": 2"),
            std::string::npos)
      << cache_json;

  const xml::Document doc = test::MustParse("<r><a/><b/><a/></r>");
  Registry r;
  batch::BatchOptions options;
  options.workers = 2;
  options.registry = &r;
  batch::BatchEvaluator pool(options);
  std::vector<batch::BatchItem> items(8);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i] = {i % 2 == 0 ? "//a" : "count(//b)", &doc, {}, {}};
  }
  const std::vector<batch::BatchResult> results = pool.EvaluateAll(items);
  for (const batch::BatchResult& res : results) ASSERT_TRUE(res.value.ok());

  const std::string json = obs::ToJson(r);
  // The pool's own PlanCache saw 2 distinct queries over 8 items.
  EXPECT_NE(json.find("\"xpe_plan_cache_hits_total\": 6"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"xpe_plan_cache_misses_total\": 2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"xpe_batch_items_total\": 8"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"xpe_batch_item_latency_us\": {\"count\": 8"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"xpe_session_evals_total\": 8"), std::string::npos)
      << json;

  const std::string prom = obs::ToPrometheusText(r);
  EXPECT_NE(prom.find("# TYPE xpe_batch_items_total counter\n"
                      "xpe_batch_items_total 8"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE xpe_batch_item_latency_us histogram"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("xpe_batch_item_latency_us_bucket{le=\"+Inf\"} 8"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("xpe_batch_item_latency_us_count 8"), std::string::npos)
      << prom;
  // Queue-wait and utilization series exist (values are timing-
  // dependent; presence is the contract).
  EXPECT_NE(prom.find("xpe_batch_queue_wait_us_count"), std::string::npos);
  EXPECT_NE(prom.find("xpe_batch_worker_utilization_pct_count"),
            std::string::npos);
}

TEST(ExportTest, SanitizesNonPrometheusNames) {
  Registry r;
  r.GetCounter("9bad name-with.dots")->Add(1);
  const std::string prom = obs::ToPrometheusText(r);
  EXPECT_NE(prom.find("_9bad_name_with_dots 1"), std::string::npos) << prom;
}

// --- EvalStats::ToString (format pin) -------------------------------------

TEST(EvalStatsTest, ToStringRendersEveryField) {
  EvalStats s;
  s.cells_allocated = 1;
  s.cells_live = 2;
  s.cells_peak = 3;
  s.contexts_evaluated = 4;
  s.axis_evals = 5;
  s.indexed_steps = 6;
  s.nodes_visited = 7;
  s.arena_bytes_peak = 8;
  s.count_fast_path = 9;
  s.pruned_by_summary = 10;
  s.budget_trips = 11;
  EXPECT_EQ(s.ToString(),
            "cells_allocated=1 cells_live=2 cells_peak=3 "
            "contexts_evaluated=4 axis_evals=5 indexed_steps=6 "
            "nodes_visited=7 arena_bytes_peak=8 count_fast_path=9 "
            "pruned_by_summary=10 budget_trips=11");
}

// --- profiler -------------------------------------------------------------

TEST(QueryProfileTest, RecordStepAggregatesByAstId) {
  obs::QueryProfile p;
  p.RecordStep(3, 100, 10, 5, 15, /*indexed=*/true);
  p.RecordStep(3, 50, 5, 2, 7, /*indexed=*/false);
  p.RecordStep(7, 10, 1, 1, 2, /*indexed=*/true);
  ASSERT_EQ(p.steps().size(), 2u);
  const obs::QueryProfile::Step& s = p.steps()[0];
  EXPECT_EQ(s.ast_id, 3u);
  EXPECT_EQ(s.calls, 2u);
  EXPECT_EQ(s.wall_ns, 150u);
  EXPECT_EQ(s.frontier, 15u);
  EXPECT_EQ(s.produced, 7u);
  EXPECT_EQ(s.nodes_visited, 22u);
  EXPECT_EQ(s.indexed_calls, 1u);
  EXPECT_EQ(s.scanned_calls, 1u);
  EXPECT_EQ(p.nodes_visited_total(), 24u);
  p.RecordPhase("eval", 1000);
  EXPECT_NE(p.ToString().find("eval"), std::string::npos);
  p.Clear();
  EXPECT_TRUE(p.steps().empty());
  EXPECT_TRUE(p.phases().empty());
}

struct ProfiledRun {
  std::string repr;     // Value::Repr of the result (engine-independent)
  std::string stats;    // EvalStats::ToString (all counters)
  uint64_t visited_rows = 0;  // profiler row sum (profiled runs only)
  uint64_t visited_stats = 0;
};

ProfiledRun RunOnce(const xpath::CompiledQuery& q, const xml::Document& doc,
                    EngineKind engine, bool use_index, ResultMode mode,
                    bool profiled) {
  EvalOptions options;
  options.engine = engine;
  options.use_index = use_index;
  options.result.mode = mode;
  if (mode == ResultMode::kLimit) options.result.limit = 2;
  EvalStats stats;
  options.stats = &stats;
  obs::QueryProfile profile;
  if (profiled) options.profile = &profile;
  StatusOr<Value> v = Evaluate(q, doc, EvalContext{}, options);
  EXPECT_TRUE(v.ok()) << q.source() << ": " << v.status().ToString();
  ProfiledRun run;
  run.repr = v.ok() ? v->Repr() : "<error>";
  run.stats = stats.ToString();
  run.visited_rows = profile.nodes_visited_total();
  run.visited_stats = stats.nodes_visited;
  return run;
}

// Attaching a profiler sink must be invisible to everything else: same
// result, same EvalStats, across every engine × index mode × result
// mode. This is the contract that makes Profile() trustworthy — what it
// reports is what the unprofiled run did.
TEST(ProfilerDifferentialTest, ProfilingChangesNoResultAndNoStats) {
  // Small enough for the |dom|³ bottom-up engine, shaped so every
  // fragment path triggers (steps, predicates, a bottom-up boolean()).
  const xml::Document doc = test::MustParse(R"(<site>
    <people><p id="a"><n>alice</n></p><p id="b"><n>bob</n></p></people>
    <items><i id="x1"><w>3</w></i><i id="x2"><w>5</w></i>
           <i id="x3"><w>3</w></i></items>
    <extra><i id="x4"/><p id="c"/></extra>
  </site>)");
  const std::vector<std::string> queries = {
      "//i",
      "//i[w = 3]",
      "/site/items/i[position() = last()]",
      "//p[n]",
      "count(//i[w])",
  };
  for (const std::string& text : queries) {
    const xpath::CompiledQuery q = test::MustCompile(text);
    const bool is_node_set = q.result_type() == xpath::ValueType::kNodeSet;
    const std::vector<ResultMode> modes =
        is_node_set ? std::vector<ResultMode>{ResultMode::kFull,
                                              ResultMode::kExists,
                                              ResultMode::kFirst,
                                              ResultMode::kCount,
                                              ResultMode::kLimit}
                    : std::vector<ResultMode>{ResultMode::kFull};
    for (EngineKind engine : AllEngines()) {
      if (engine == EngineKind::kCoreXPath &&
          q.fragment() != xpath::Fragment::kCoreXPath) {
        continue;
      }
      for (bool use_index : {false, true}) {
        for (ResultMode mode : modes) {
          const ProfiledRun off =
              RunOnce(q, doc, engine, use_index, mode, /*profiled=*/false);
          const ProfiledRun on =
              RunOnce(q, doc, engine, use_index, mode, /*profiled=*/true);
          const std::string label =
              text + " / " + EngineKindToString(engine) +
              (use_index ? " +index" : " -index") + " / " +
              ResultModeToString(mode);
          EXPECT_EQ(off.repr, on.repr) << label;
          EXPECT_EQ(off.stats, on.stats) << label;
          // The acceptance invariant: profiler rows account for every
          // node the stats counter saw, exactly.
          EXPECT_EQ(on.visited_rows, on.visited_stats) << label;
        }
      }
    }
  }
}

TEST(QueryProfileTest, ProfileJoinsPlanAndRuntime) {
  xml::Document doc =
      xml::MakeRandomDocument(2000, {"x", "a", "b", "c"}, /*seed=*/99);
  StatusOr<Query> q = Query::Compile("//x");
  ASSERT_TRUE(q.ok());
  StatusOr<obs::ProfileReport> report = q->Profile(doc);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The optimizer fused //x into one descendant::x step; its row must
  // account for exactly the nodes the stats counter saw.
  EXPECT_FALSE(report->data.steps().empty());
  EXPECT_EQ(report->data.nodes_visited_total(), report->stats.nodes_visited);
  EXPECT_GT(report->stats.nodes_visited, 0u);
  // Phases: the compile pipeline's spans plus the dispatcher's eval span.
  std::vector<std::string> phase_names;
  for (const obs::QueryProfile::Phase& p : report->data.phases()) {
    phase_names.push_back(p.name);
  }
  EXPECT_EQ(phase_names, (std::vector<std::string>{
                             "parse", "normalize", "optimize", "analyze",
                             "eval"}));
  // The joined text carries the static plan report and the runtime rows.
  EXPECT_NE(report->text.find("runtime profile"), std::string::npos);
  EXPECT_NE(report->text.find("descendant::x"), std::string::npos)
      << report->text;
  EXPECT_NE(report->text.find("nodes_visited="), std::string::npos);
  // A second Profile() call is independent (fresh report).
  StatusOr<obs::ProfileReport> again = q->Profile(doc);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.nodes_visited, report->stats.nodes_visited);
}

TEST(QueryProfileTest, MultiStepPlanGetsOneRowPerStep) {
  const xml::Document doc = test::MustParse(
      "<r><a><x/><y/></a><b><x/></b><a><x/><x/></a></r>");
  StatusOr<Query> q = Query::Compile("//a/x");
  ASSERT_TRUE(q.ok());
  StatusOr<obs::ProfileReport> report = q->Profile(doc);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->data.steps().size(), 2u) << report->text;
  EXPECT_EQ(report->data.nodes_visited_total(), report->stats.nodes_visited);
}

// --- batch fail-loudly + aggregation --------------------------------------

TEST(BatchObsDeathTest, SharedStatsSinkAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EvalStats stats;
  batch::BatchOptions options;
  options.workers = 1;
  options.eval.stats = &stats;
  EXPECT_DEATH(batch::BatchEvaluator pool(options), "data race");
}

TEST(BatchObsDeathTest, SharedProfileSinkAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  obs::QueryProfile profile;
  batch::BatchOptions options;
  options.workers = 1;
  options.eval.profile = &profile;
  EXPECT_DEATH(batch::BatchEvaluator pool(options), "data race");
}

TEST(BatchObsTest, BatchStatsMergeNodesVisited) {
  const xml::Document doc = test::MustParse("<r><a/><a/><b/></r>");
  batch::BatchOptions options;
  options.workers = 2;
  obs::Registry r;
  options.registry = &r;
  batch::BatchEvaluator pool(options);
  std::vector<batch::BatchItem> items = {
      {"//a", &doc, {}, {}},
      {"//b", &doc, {}, {}},
  };
  const std::vector<batch::BatchResult> results = pool.EvaluateAll(items);
  ASSERT_TRUE(results[0].value.ok());
  ASSERT_TRUE(results[1].value.ok());
  const batch::BatchStats stats = pool.last_batch_stats();
  EXPECT_EQ(stats.items, 2u);
  // The regression this pins: MergeEvalStats used to drop nodes_visited,
  // so batch-level stats silently reported 0 forever.
  EXPECT_GT(stats.eval.nodes_visited, 0u);
}

}  // namespace
}  // namespace xpe
