#include <gtest/gtest.h>

#include "src/xpath/explain.h"
#include "tests/test_util.h"

namespace xpe::xpath {
namespace {

using test::MustCompile;

TEST(ExplainTest, CoreQueryReport) {
  const std::string report = Explain(MustCompile("//a[b]"));
  EXPECT_NE(report.find("fragment:    CoreXPath"), std::string::npos);
  EXPECT_NE(report.find("O(|D| * |Q|)"), std::string::npos);
  EXPECT_NE(report.find("corexpath"), std::string::npos);
  EXPECT_NE(report.find("result type: node-set"), std::string::npos);
}

TEST(ExplainTest, WadlerQueryReportsBottomUpCount) {
  const std::string report =
      Explain(MustCompile("//a[boolean(following::d)][b = 100]"));
  EXPECT_NE(report.find("fragment:    ExtendedWadler"), std::string::npos);
  EXPECT_NE(report.find("bottom-up:   2 subexpression(s)"),
            std::string::npos);
  EXPECT_NE(report.find("O(|D| * |Q|^2)"), std::string::npos);
}

TEST(ExplainTest, FullXPathReport) {
  const std::string report = Explain(MustCompile("//a[b = c]"));
  EXPECT_NE(report.find("fragment:    FullXPath"), std::string::npos);
  EXPECT_NE(report.find("mincontext (Algorithm 6)"), std::string::npos);
  EXPECT_NE(report.find("O(|D|^4 * |Q|^2)"), std::string::npos);
}

TEST(ExplainTest, ShowsRelevancePerNode) {
  const std::string report =
      Explain(MustCompile("//a[position() > last()*0.5]"));
  EXPECT_NE(report.find("Relev={cp}"), std::string::npos);
  EXPECT_NE(report.find("Relev={cs}"), std::string::npos);
  EXPECT_NE(report.find("Relev={cn}"), std::string::npos);
}

TEST(ExplainTest, ShowsCanonicalForm) {
  const std::string report = Explain(MustCompile("a[1]"));
  EXPECT_NE(report.find("canonical:   child::a[(position() = 1)]"),
            std::string::npos);
  EXPECT_NE(report.find("query:       a[1]"), std::string::npos);
}

TEST(ExplainTest, TruncatesLongRenderings) {
  std::string q = "//a[b = 'this is a rather long string literal that "
                  "goes on and on and on']";
  const std::string report = Explain(MustCompile(q));
  EXPECT_NE(report.find("..."), std::string::npos);
}

TEST(ExplainTest, ScalarQueryType) {
  const std::string report = Explain(MustCompile("count(//a) + 1"));
  EXPECT_NE(report.find("result type: number"), std::string::npos);
}

}  // namespace
}  // namespace xpe::xpath
